//! Row-granular MCT / level-shift / quantization kernels with explicit SSE2
//! paths, selected through the same [`wavelet::dispatch`] switch as the DWT
//! row primitives, so `J2K_KERNELS=scalar` forces every hot loop in the
//! encoder onto the scalar reference at once.
//!
//! # Byte-identity
//!
//! Each SIMD path performs the *same arithmetic in the same per-element
//! order* as its scalar counterpart:
//!
//! * RCT: 32-bit adds/subs/shifts — SSE2 integer ops wrap exactly like
//!   release-mode scalar arithmetic, and `_mm_srai_epi32` is the arithmetic
//!   `>>` on each lane.
//! * ICT: `f32` multiply/add chains evaluated left-to-right; Rust never
//!   contracts `a*b + c` into an FMA, so `_mm_mul_ps`/`_mm_add_ps` in the
//!   same association produce IEEE-identical results.
//! * Quantize: the scalar path is `(|v| as f64 / delta) as i64` clamped to
//!   `[0, i32::MAX]` and re-signed. The SIMD path widens each `f32` to `f64`
//!   (`_mm_cvtps_pd`, exact), divides in double (`_mm_div_pd`, same IEEE op),
//!   truncates (`_mm_cvttpd_epi32`), then patches the conversion's
//!   out-of-range sentinel to match Rust's saturating `as` cast: lanes with
//!   quotient `>= 2^31` become `i32::MAX`, NaN lanes become 0, negative
//!   quotients (negative `delta`) clamp to 0, and the sign of the input is
//!   re-applied as `(q ^ m) - m`. Every case is pinned by differential tests.
//!
//! The inverse ICT stays scalar: its `(x + shift).round()` is
//! round-half-away-from-zero, which has no cheap SSE2 equivalent, and the
//! decode path is not performance-critical.

/// Scalar reference implementations (always compiled; forced via
/// `wavelet::dispatch`).
pub mod scalar {
    /// Forward RCT with level shift, in place on three component rows.
    pub fn rct_forward_row(r: &mut [i32], g: &mut [i32], b: &mut [i32], shift: i32) {
        let n = r.len().min(g.len()).min(b.len());
        for i in 0..n {
            let rv = r[i] - shift;
            let gv = g[i] - shift;
            let bv = b[i] - shift;
            r[i] = (rv + 2 * gv + bv) >> 2;
            g[i] = bv - gv;
            b[i] = rv - gv;
        }
    }

    /// Inverse RCT with level unshift, in place (Y/U/V rows become R/G/B).
    pub fn rct_inverse_row(y: &mut [i32], u: &mut [i32], v: &mut [i32], shift: i32) {
        let n = y.len().min(u.len()).min(v.len());
        for i in 0..n {
            let g = y[i] - ((u[i] + v[i]) >> 2);
            let r = v[i] + g;
            let b = u[i] + g;
            y[i] = r + shift;
            u[i] = g + shift;
            v[i] = b + shift;
        }
    }

    /// Forward ICT with level shift: integer R/G/B rows in, float Y/Cb/Cr out.
    #[allow(clippy::too_many_arguments)]
    pub fn ict_forward_row(
        r: &[i32],
        g: &[i32],
        b: &[i32],
        yy: &mut [f32],
        cb: &mut [f32],
        cr: &mut [f32],
        shift: f32,
    ) {
        let n = r.len().min(g.len()).min(b.len());
        for i in 0..n {
            let rv = r[i] as f32 - shift;
            let gv = g[i] as f32 - shift;
            let bv = b[i] as f32 - shift;
            yy[i] = 0.299 * rv + 0.587 * gv + 0.114 * bv;
            cb[i] = -0.168_736 * rv - 0.331_264 * gv + 0.5 * bv;
            cr[i] = 0.5 * rv - 0.418_688 * gv - 0.081_312 * bv;
        }
    }

    /// Level shift a row in place: `v -= shift`.
    pub fn level_shift_row(row: &mut [i32], shift: i32) {
        for v in row.iter_mut() {
            *v -= shift;
        }
    }

    /// Dead-zone quantize a row of `f32` coefficients.
    pub fn quantize_row(src: &[f32], dst: &mut [i32], delta: f64) {
        let n = src.len().min(dst.len());
        for i in 0..n {
            dst[i] = crate::quant::quantize(src[i], delta);
        }
    }

    /// Dead-zone quantize a row of Q13 fixed-point coefficients
    /// (`value = raw / 2^13`), matching the fixed DWT path.
    pub fn quantize_q13_row(src: &[i32], dst: &mut [i32], delta: f64) {
        let n = src.len().min(dst.len());
        for i in 0..n {
            dst[i] = crate::quant::quantize(src[i] as f32 / 8192.0, delta);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod sse {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    pub fn rct_forward_row(r: &mut [i32], g: &mut [i32], b: &mut [i32], shift: i32) {
        let n = r.len().min(g.len()).min(b.len());
        let mut i = 0;
        unsafe {
            let sh = _mm_set1_epi32(shift);
            while i + 4 <= n {
                let rv = _mm_sub_epi32(_mm_loadu_si128(r.as_ptr().add(i) as *const __m128i), sh);
                let gv = _mm_sub_epi32(_mm_loadu_si128(g.as_ptr().add(i) as *const __m128i), sh);
                let bv = _mm_sub_epi32(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i), sh);
                let yy = _mm_srai_epi32::<2>(_mm_add_epi32(
                    _mm_add_epi32(rv, _mm_add_epi32(gv, gv)),
                    bv,
                ));
                let u = _mm_sub_epi32(bv, gv);
                let v = _mm_sub_epi32(rv, gv);
                _mm_storeu_si128(r.as_mut_ptr().add(i) as *mut __m128i, yy);
                _mm_storeu_si128(g.as_mut_ptr().add(i) as *mut __m128i, u);
                _mm_storeu_si128(b.as_mut_ptr().add(i) as *mut __m128i, v);
                i += 4;
            }
        }
        super::scalar::rct_forward_row(&mut r[i..n], &mut g[i..n], &mut b[i..n], shift);
    }

    pub fn rct_inverse_row(y: &mut [i32], u: &mut [i32], v: &mut [i32], shift: i32) {
        let n = y.len().min(u.len()).min(v.len());
        let mut i = 0;
        unsafe {
            let sh = _mm_set1_epi32(shift);
            while i + 4 <= n {
                let yv = _mm_loadu_si128(y.as_ptr().add(i) as *const __m128i);
                let uv = _mm_loadu_si128(u.as_ptr().add(i) as *const __m128i);
                let vv = _mm_loadu_si128(v.as_ptr().add(i) as *const __m128i);
                let g = _mm_sub_epi32(yv, _mm_srai_epi32::<2>(_mm_add_epi32(uv, vv)));
                let r = _mm_add_epi32(vv, g);
                let b = _mm_add_epi32(uv, g);
                _mm_storeu_si128(y.as_mut_ptr().add(i) as *mut __m128i, _mm_add_epi32(r, sh));
                _mm_storeu_si128(u.as_mut_ptr().add(i) as *mut __m128i, _mm_add_epi32(g, sh));
                _mm_storeu_si128(v.as_mut_ptr().add(i) as *mut __m128i, _mm_add_epi32(b, sh));
                i += 4;
            }
        }
        super::scalar::rct_inverse_row(&mut y[i..n], &mut u[i..n], &mut v[i..n], shift);
    }

    #[allow(clippy::too_many_arguments)]
    pub fn ict_forward_row(
        r: &[i32],
        g: &[i32],
        b: &[i32],
        yy: &mut [f32],
        cb: &mut [f32],
        cr: &mut [f32],
        shift: f32,
    ) {
        let n = r.len().min(g.len()).min(b.len());
        let mut i = 0;
        unsafe {
            let sh = _mm_set1_ps(shift);
            while i + 4 <= n {
                let rv = _mm_sub_ps(
                    _mm_cvtepi32_ps(_mm_loadu_si128(r.as_ptr().add(i) as *const __m128i)),
                    sh,
                );
                let gv = _mm_sub_ps(
                    _mm_cvtepi32_ps(_mm_loadu_si128(g.as_ptr().add(i) as *const __m128i)),
                    sh,
                );
                let bv = _mm_sub_ps(
                    _mm_cvtepi32_ps(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i)),
                    sh,
                );
                // Same association as the scalar source: (c1*r + c2*g) + c3*b.
                let yv = _mm_add_ps(
                    _mm_add_ps(
                        _mm_mul_ps(_mm_set1_ps(0.299), rv),
                        _mm_mul_ps(_mm_set1_ps(0.587), gv),
                    ),
                    _mm_mul_ps(_mm_set1_ps(0.114), bv),
                );
                let cbv = _mm_add_ps(
                    _mm_sub_ps(
                        _mm_mul_ps(_mm_set1_ps(-0.168_736), rv),
                        _mm_mul_ps(_mm_set1_ps(0.331_264), gv),
                    ),
                    _mm_mul_ps(_mm_set1_ps(0.5), bv),
                );
                let crv = _mm_sub_ps(
                    _mm_sub_ps(
                        _mm_mul_ps(_mm_set1_ps(0.5), rv),
                        _mm_mul_ps(_mm_set1_ps(0.418_688), gv),
                    ),
                    _mm_mul_ps(_mm_set1_ps(0.081_312), bv),
                );
                _mm_storeu_ps(yy.as_mut_ptr().add(i), yv);
                _mm_storeu_ps(cb.as_mut_ptr().add(i), cbv);
                _mm_storeu_ps(cr.as_mut_ptr().add(i), crv);
                i += 4;
            }
        }
        super::scalar::ict_forward_row(
            &r[i..n],
            &g[i..n],
            &b[i..n],
            &mut yy[i..n],
            &mut cb[i..n],
            &mut cr[i..n],
            shift,
        );
    }

    pub fn level_shift_row(row: &mut [i32], shift: i32) {
        let n = row.len();
        let mut i = 0;
        unsafe {
            let sh = _mm_set1_epi32(shift);
            while i + 4 <= n {
                let v = _mm_loadu_si128(row.as_ptr().add(i) as *const __m128i);
                _mm_storeu_si128(
                    row.as_mut_ptr().add(i) as *mut __m128i,
                    _mm_sub_epi32(v, sh),
                );
                i += 4;
            }
        }
        super::scalar::level_shift_row(&mut row[i..], shift);
    }

    /// Quantize four raw (signed) lanes; see the module docs for the
    /// exact-semantics derivation of each fix-up mask.
    #[inline]
    unsafe fn quantize4(v: __m128, delta: __m128d) -> __m128i {
        let absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFF_FFFF));
        let a = _mm_and_ps(v, absmask);
        let qlo = _mm_div_pd(_mm_cvtps_pd(a), delta);
        let qhi = _mm_div_pd(_mm_cvtps_pd(_mm_movehl_ps(a, a)), delta);
        let r = _mm_unpacklo_epi64(_mm_cvttpd_epi32(qlo), _mm_cvttpd_epi32(qhi));
        // Saturate quotients >= 2^31 to i32::MAX (Rust's `as` cast saturates;
        // _mm_cvttpd_epi32 yields the 0x80000000 sentinel instead).
        let big = _mm_set1_pd(2147483648.0);
        let hi = _mm_castps_si128(_mm_shuffle_ps::<0b10_00_10_00>(
            _mm_castpd_ps(_mm_cmpge_pd(qlo, big)),
            _mm_castpd_ps(_mm_cmpge_pd(qhi, big)),
        ));
        let maxv = _mm_set1_epi32(i32::MAX);
        let r = _mm_or_si128(_mm_and_si128(hi, maxv), _mm_andnot_si128(hi, r));
        // NaN quotients (NaN input or NaN delta) quantize to 0.
        let nan = _mm_castps_si128(_mm_shuffle_ps::<0b10_00_10_00>(
            _mm_castpd_ps(_mm_cmpunord_pd(qlo, qlo)),
            _mm_castpd_ps(_mm_cmpunord_pd(qhi, qhi)),
        ));
        let r = _mm_andnot_si128(nan, r);
        // Negative quotients (negative delta) clamp to 0, like `.clamp(0, ..)`.
        let r = _mm_andnot_si128(_mm_cmpgt_epi32(_mm_setzero_si128(), r), r);
        // Re-apply the sign of v: (r ^ m) - m with m = all-ones where v < 0.
        let m = _mm_castps_si128(_mm_cmplt_ps(v, _mm_setzero_ps()));
        _mm_sub_epi32(_mm_xor_si128(r, m), m)
    }

    pub fn quantize_row(src: &[f32], dst: &mut [i32], delta: f64) {
        let n = src.len().min(dst.len());
        let mut i = 0;
        unsafe {
            let d = _mm_set1_pd(delta);
            while i + 4 <= n {
                let v = _mm_loadu_ps(src.as_ptr().add(i));
                _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, quantize4(v, d));
                i += 4;
            }
        }
        super::scalar::quantize_row(&src[i..n], &mut dst[i..n], delta);
    }

    pub fn quantize_q13_row(src: &[i32], dst: &mut [i32], delta: f64) {
        let n = src.len().min(dst.len());
        let mut i = 0;
        unsafe {
            let d = _mm_set1_pd(delta);
            // `as f32` is round-to-nearest-even, exactly _mm_cvtepi32_ps;
            // division by 8192.0 (a power of two) is the same IEEE op divps.
            let inv = _mm_set1_ps(8192.0);
            while i + 4 <= n {
                let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
                let v = _mm_div_ps(_mm_cvtepi32_ps(s), inv);
                _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, quantize4(v, d));
                i += 4;
            }
        }
        super::scalar::quantize_q13_row(&src[i..n], &mut dst[i..n], delta);
    }
}

macro_rules! dispatched {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* $(,)? )) => {
        $(#[$doc])*
        #[inline]
        pub fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if wavelet::dispatch::active() == wavelet::dispatch::Backend::Simd {
                return sse::$name($($arg),*);
            }
            scalar::$name($($arg),*)
        }
    };
}

dispatched! {
    /// Forward RCT with level shift, in place on three component rows.
    rct_forward_row(r: &mut [i32], g: &mut [i32], b: &mut [i32], shift: i32)
}
dispatched! {
    /// Inverse RCT with level unshift, in place (Y/U/V rows become R/G/B).
    rct_inverse_row(y: &mut [i32], u: &mut [i32], v: &mut [i32], shift: i32)
}
dispatched! {
    /// Forward ICT with level shift: integer R/G/B rows in, float Y/Cb/Cr out.
    ict_forward_row(
        r: &[i32],
        g: &[i32],
        b: &[i32],
        yy: &mut [f32],
        cb: &mut [f32],
        cr: &mut [f32],
        shift: f32,
    )
}
dispatched! {
    /// Level shift a row in place: `v -= shift`.
    level_shift_row(row: &mut [i32], shift: i32)
}
dispatched! {
    /// Dead-zone quantize a row of `f32` coefficients into `i32` indices.
    quantize_row(src: &[f32], dst: &mut [i32], delta: f64)
}
dispatched! {
    /// Dead-zone quantize a row of Q13 fixed-point coefficients.
    quantize_q13_row(src: &[i32], dst: &mut [i32], delta: f64)
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    fn pcg(seed: &mut u64) -> u32 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*seed >> 33) as u32
    }

    #[test]
    fn rct_rows_match_scalar() {
        let mut s = 7u64;
        for n in 0..=19usize {
            let r0: Vec<i32> = (0..n).map(|_| pcg(&mut s) as i32 % 4096).collect();
            let g0: Vec<i32> = (0..n).map(|_| pcg(&mut s) as i32 % 4096).collect();
            let b0: Vec<i32> = (0..n).map(|_| pcg(&mut s) as i32 % 4096).collect();
            let (mut r1, mut g1, mut b1) = (r0.clone(), g0.clone(), b0.clone());
            let (mut r2, mut g2, mut b2) = (r0.clone(), g0.clone(), b0.clone());
            scalar::rct_forward_row(&mut r1, &mut g1, &mut b1, 128);
            sse::rct_forward_row(&mut r2, &mut g2, &mut b2, 128);
            assert_eq!((&r1, &g1, &b1), (&r2, &g2, &b2), "fwd n={n}");
            scalar::rct_inverse_row(&mut r1, &mut g1, &mut b1, 128);
            sse::rct_inverse_row(&mut r2, &mut g2, &mut b2, 128);
            assert_eq!((r1, g1, b1), (r2, g2, b2), "inv n={n}");
        }
    }

    #[test]
    fn ict_row_bit_identical_to_scalar() {
        let mut s = 9u64;
        for n in 0..=19usize {
            let r: Vec<i32> = (0..n).map(|_| pcg(&mut s) as i32 % 65536).collect();
            let g: Vec<i32> = (0..n).map(|_| pcg(&mut s) as i32 % 65536).collect();
            let b: Vec<i32> = (0..n).map(|_| pcg(&mut s) as i32 % 65536).collect();
            let mut out1 = vec![vec![0f32; n]; 3];
            let mut out2 = vec![vec![0f32; n]; 3];
            {
                let (y, rest) = out1.split_at_mut(1);
                let (cb, cr) = rest.split_at_mut(1);
                scalar::ict_forward_row(&r, &g, &b, &mut y[0], &mut cb[0], &mut cr[0], 128.0);
            }
            {
                let (y, rest) = out2.split_at_mut(1);
                let (cb, cr) = rest.split_at_mut(1);
                sse::ict_forward_row(&r, &g, &b, &mut y[0], &mut cb[0], &mut cr[0], 128.0);
            }
            for c in 0..3 {
                let a: Vec<u32> = out1[c].iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = out2[c].iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, bb, "component {c} n={n}");
            }
        }
    }

    #[test]
    fn quantize_row_matches_scalar_including_edges() {
        let special = [
            0.0f32,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN,
            1e30,
            -1e30,
            0.4999,
            -0.4999,
        ];
        for delta in [0.5f64, 1.0, 1e-30, 0.0, -0.5, f64::NAN] {
            let mut src: Vec<f32> = special.to_vec();
            let mut s = 11u64;
            for _ in 0..37 {
                src.push((pcg(&mut s) as i32 % 100000) as f32 * 0.037);
            }
            let mut d1 = vec![0i32; src.len()];
            let mut d2 = vec![0i32; src.len()];
            scalar::quantize_row(&src, &mut d1, delta);
            sse::quantize_row(&src, &mut d2, delta);
            assert_eq!(d1, d2, "delta={delta}");
        }
    }

    #[test]
    fn quantize_q13_row_matches_scalar() {
        let mut s = 13u64;
        let src: Vec<i32> = (0..41)
            .map(|_| pcg(&mut s) as i32)
            .chain([i32::MAX, i32::MIN, 0, -1, 1])
            .collect();
        for delta in [0.25f64, 3.7, 1e-9] {
            let mut d1 = vec![0i32; src.len()];
            let mut d2 = vec![0i32; src.len()];
            scalar::quantize_q13_row(&src, &mut d1, delta);
            sse::quantize_q13_row(&src, &mut d2, delta);
            assert_eq!(d1, d2, "delta={delta}");
        }
    }

    #[test]
    fn level_shift_row_matches_scalar() {
        let mut a: Vec<i32> = (0..23).collect();
        let mut b = a.clone();
        scalar::level_shift_row(&mut a, 128);
        sse::level_shift_row(&mut b, 128);
        assert_eq!(a, b);
    }

    #[test]
    fn dispatch_forced_scalar_agrees_with_simd() {
        let src: Vec<f32> = (0..33).map(|i| i as f32 * 1.7 - 20.0).collect();
        let mut with_simd = vec![0i32; src.len()];
        let mut with_scalar = vec![0i32; src.len()];
        {
            let _g = wavelet::dispatch::force_guard(wavelet::dispatch::Backend::Simd);
            quantize_row(&src, &mut with_simd, 0.75);
        }
        {
            let _g = wavelet::dispatch::force_guard(wavelet::dispatch::Backend::Scalar);
            quantize_row(&src, &mut with_scalar, 0.75);
        }
        assert_eq!(with_simd, with_scalar);
    }
}
