//! Level shift and multi-component transforms, merged into one pass over
//! the samples ("the level shift and inter-component transform stages are
//! merged to minimize the data transfer", Section 3.2).

use xpart::AlignedPlane;

/// Forward reversible color transform (RCT, Annex G.2) with level shift.
/// Operates in place on the three component planes. Chroma outputs need
/// one extra bit of dynamic range.
pub fn forward_rct_shift(planes: &mut [AlignedPlane<i32>], shift: i32) {
    assert_eq!(planes.len(), 3);
    let (w, h) = (planes[0].width(), planes[0].height());
    let samples = (w * h * 3) as u64;
    let _m = obs::counters::measure(
        obs::counters::Kernel::MctRct,
        samples,
        samples * std::mem::size_of::<i32>() as u64,
    );
    let (p0, rest) = planes.split_at_mut(1);
    let (p1, p2) = rest.split_at_mut(1);
    for y in 0..h {
        crate::kernels::rct_forward_row(
            p0[0].row_mut(y),
            p1[0].row_mut(y),
            p2[0].row_mut(y),
            shift,
        );
    }
}

/// Inverse RCT with level unshift.
pub fn inverse_rct_shift(planes: &mut [AlignedPlane<i32>], shift: i32) {
    assert_eq!(planes.len(), 3);
    let h = planes[0].height();
    let (p0, rest) = planes.split_at_mut(1);
    let (p1, p2) = rest.split_at_mut(1);
    for y in 0..h {
        crate::kernels::rct_inverse_row(
            p0[0].row_mut(y),
            p1[0].row_mut(y),
            p2[0].row_mut(y),
            shift,
        );
    }
}

/// Forward irreversible color transform (ICT, Annex G.3) with level shift,
/// integer planes in, float planes out.
pub fn forward_ict_shift(planes: &[AlignedPlane<i32>], shift: f32) -> Vec<AlignedPlane<f32>> {
    assert_eq!(planes.len(), 3);
    let (w, h) = (planes[0].width(), planes[0].height());
    let samples = (w * h * 3) as u64;
    let _m = obs::counters::measure(
        obs::counters::Kernel::MctIct,
        samples,
        samples * std::mem::size_of::<i32>() as u64,
    );
    let mut out: Vec<AlignedPlane<f32>> = (0..3)
        .map(|_| AlignedPlane::new(w, h).expect("geometry"))
        .collect();
    let (o0, rest) = out.split_at_mut(1);
    let (o1, o2) = rest.split_at_mut(1);
    for y in 0..h {
        crate::kernels::ict_forward_row(
            planes[0].row(y),
            planes[1].row(y),
            planes[2].row(y),
            o0[0].row_mut(y),
            o1[0].row_mut(y),
            o2[0].row_mut(y),
            shift,
        );
    }
    out
}

/// Inverse ICT with level unshift, float planes in, integer planes out.
pub fn inverse_ict_shift(planes: &[AlignedPlane<f32>], shift: f32) -> Vec<AlignedPlane<i32>> {
    assert_eq!(planes.len(), 3);
    let (w, h) = (planes[0].width(), planes[0].height());
    let mut out: Vec<AlignedPlane<i32>> = (0..3)
        .map(|_| AlignedPlane::new(w, h).expect("geometry"))
        .collect();
    for y in 0..h {
        for x in 0..w {
            let yy = planes[0].get(x, y);
            let cb = planes[1].get(x, y);
            let cr = planes[2].get(x, y);
            let r = yy + 1.402 * cr;
            let g = yy - 0.344_136 * cb - 0.714_136 * cr;
            let b = yy + 1.772 * cb;
            out[0].set(x, y, (r + shift).round() as i32);
            out[1].set(x, y, (g + shift).round() as i32);
            out[2].set(x, y, (b + shift).round() as i32);
        }
    }
    out
}

/// Plain level shift for non-RGB images (in place).
pub fn level_shift(plane: &mut AlignedPlane<i32>, shift: i32) {
    for y in 0..plane.height() {
        crate::kernels::level_shift_row(plane.row_mut(y), shift);
    }
}

/// Inverse level shift (in place).
pub fn level_unshift(plane: &mut AlignedPlane<i32>, shift: i32) {
    for y in 0..plane.height() {
        crate::kernels::level_shift_row(plane.row_mut(y), -shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rgb_planes(seed: u32) -> Vec<AlignedPlane<i32>> {
        let mut x = seed | 1;
        (0..3)
            .map(|_| {
                let mut p = AlignedPlane::<i32>::new(9, 7).unwrap();
                p.for_each_mut(|_, _, v| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    *v = ((x >> 9) % 256) as i32;
                });
                p
            })
            .collect()
    }

    #[test]
    fn rct_roundtrip_exact() {
        let orig = rgb_planes(1);
        let mut p = orig.clone();
        forward_rct_shift(&mut p, 128);
        inverse_rct_shift(&mut p, 128);
        for c in 0..3 {
            assert_eq!(p[c].to_dense(), orig[c].to_dense(), "component {c}");
        }
    }

    #[test]
    fn rct_decorrelates_gray() {
        // R = G = B means U = V = 0 and Y = sample - shift.
        let mut p: Vec<AlignedPlane<i32>> = (0..3)
            .map(|_| {
                let mut q = AlignedPlane::<i32>::new(4, 4).unwrap();
                q.for_each_mut(|x, y, v| *v = (40 + x * 10 + y) as i32);
                q
            })
            .collect();
        forward_rct_shift(&mut p, 128);
        assert!(p[1].to_dense().iter().all(|&v| v == 0));
        assert!(p[2].to_dense().iter().all(|&v| v == 0));
        assert_eq!(p[0].get(0, 0), 40 - 128);
    }

    #[test]
    fn rct_chroma_range_is_one_extra_bit() {
        // Extremes: R=255,G=0,B=255 -> U=V=255; R=0,G=255,B=0 -> U=V=-255.
        let mut p: Vec<AlignedPlane<i32>> = (0..3)
            .map(|_| AlignedPlane::<i32>::new(1, 1).unwrap())
            .collect();
        p[0].set(0, 0, 255);
        p[1].set(0, 0, 0);
        p[2].set(0, 0, 255);
        forward_rct_shift(&mut p, 128);
        assert_eq!(p[1].get(0, 0), 255);
        assert!(p[1].get(0, 0).unsigned_abs() < (1 << 9));
    }

    #[test]
    fn ict_roundtrip_close() {
        let orig = rgb_planes(2);
        let f = forward_ict_shift(&orig, 128.0);
        let back = inverse_ict_shift(&f, 128.0);
        for c in 0..3 {
            for (g, e) in back[c].to_dense().iter().zip(orig[c].to_dense()) {
                assert!((g - e).abs() <= 1, "component {c}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn ict_luma_of_gray_is_value() {
        let mut p: Vec<AlignedPlane<i32>> = (0..3)
            .map(|_| AlignedPlane::<i32>::new(1, 1).unwrap())
            .collect();
        for plane in p.iter_mut() {
            plane.set(0, 0, 200);
        }
        let f = forward_ict_shift(&p, 128.0);
        assert!((f[0].get(0, 0) - 72.0).abs() < 0.01);
        assert!(f[1].get(0, 0).abs() < 0.01);
        assert!(f[2].get(0, 0).abs() < 0.01);
    }

    #[test]
    fn level_shift_roundtrip() {
        let mut p = AlignedPlane::<i32>::new(3, 3).unwrap();
        p.for_each_mut(|x, _, v| *v = x as i32 * 100);
        let orig = p.clone();
        level_shift(&mut p, 128);
        assert_eq!(p.get(0, 0), -128);
        level_unshift(&mut p, 128);
        assert_eq!(p.to_dense(), orig.to_dense());
    }
}
