//! JP2 container (JPEG2000 Part 1, Annex I): the box-structured file
//! format that normally wraps a raw codestream (`.jp2` vs `.j2c`).
//!
//! Implements the minimal mandatory box set — JPEG2000 signature, file
//! type, JP2 header (image header + colour specification), and the
//! contiguous-codestream box — which is what every common `.jp2` file
//! carries.

use crate::codestream::{self, MainHeader};
use crate::CodecError;

const BOX_SIGNATURE: &[u8; 4] = b"jP\x20\x20";
const BOX_FTYP: &[u8; 4] = b"ftyp";
const BOX_JP2H: &[u8; 4] = b"jp2h";
const BOX_IHDR: &[u8; 4] = b"ihdr";
const BOX_COLR: &[u8; 4] = b"colr";
const BOX_JP2C: &[u8; 4] = b"jp2c";
const SIGNATURE_PAYLOAD: [u8; 4] = [0x0D, 0x0A, 0x87, 0x0A];

fn push_box(out: &mut Vec<u8>, kind: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(&((payload.len() + 8) as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(payload);
}

/// Wrap a raw codestream in a JP2 container. The image geometry is read
/// from the codestream's own main header, so the boxes always agree with
/// the payload.
pub fn wrap(codestream_bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let parsed = codestream::parse(codestream_bytes)?;
    let hdr = &parsed.header;
    let mut out = Vec::with_capacity(codestream_bytes.len() + 96);

    push_box(&mut out, BOX_SIGNATURE, &SIGNATURE_PAYLOAD);

    let mut ftyp = Vec::new();
    ftyp.extend_from_slice(b"jp2\x20"); // brand
    ftyp.extend_from_slice(&0u32.to_be_bytes()); // minor version
    ftyp.extend_from_slice(b"jp2\x20"); // compatibility list
    push_box(&mut out, BOX_FTYP, &ftyp);

    let mut jp2h = Vec::new();
    let mut ihdr = Vec::new();
    ihdr.extend_from_slice(&(hdr.height as u32).to_be_bytes());
    ihdr.extend_from_slice(&(hdr.width as u32).to_be_bytes());
    ihdr.extend_from_slice(&(hdr.comps as u16).to_be_bytes());
    ihdr.push(hdr.depth - 1); // BPC: depth-1, unsigned
    ihdr.push(7); // compression type: JPEG2000
    ihdr.push(0); // colourspace unknown = false
    ihdr.push(0); // no IPR
    push_box(&mut jp2h, BOX_IHDR, &ihdr);
    let mut colr = Vec::new();
    colr.push(1); // method: enumerated
    colr.push(0); // precedence
    colr.push(0); // approximation
    let enum_cs: u32 = if hdr.comps == 3 { 16 } else { 17 }; // sRGB / greyscale
    colr.extend_from_slice(&enum_cs.to_be_bytes());
    push_box(&mut jp2h, BOX_COLR, &colr);
    push_box(&mut out, BOX_JP2H, &jp2h);

    push_box(&mut out, BOX_JP2C, codestream_bytes);
    Ok(out)
}

/// Extract the contiguous codestream from a JP2 container.
pub fn unwrap(data: &[u8]) -> Result<&[u8], CodecError> {
    let mut p = 0usize;
    let mut saw_signature = false;
    while p + 8 <= data.len() {
        let len = u32::from_be_bytes([data[p], data[p + 1], data[p + 2], data[p + 3]]) as usize;
        let kind = &data[p + 4..p + 8];
        // XLBox (64-bit length) and to-end-of-file boxes.
        let (payload_start, box_len) = match len {
            0 => (p + 8, data.len() - p),
            1 => {
                if p + 16 > data.len() {
                    return Err(CodecError::Codestream("truncated XLBox".into()));
                }
                let l = u64::from_be_bytes(data[p + 8..p + 16].try_into().unwrap()) as usize;
                (p + 16, l)
            }
            l if l >= 8 => (p + 8, l),
            _ => return Err(CodecError::Codestream("bad box length".into())),
        };
        if p + box_len > data.len() {
            return Err(CodecError::Codestream("box overruns file".into()));
        }
        if p == 0 {
            if kind != BOX_SIGNATURE || data[payload_start..p + box_len] != SIGNATURE_PAYLOAD {
                return Err(CodecError::Codestream("not a JP2 file".into()));
            }
            saw_signature = true;
        }
        if kind == BOX_JP2C {
            if !saw_signature {
                return Err(CodecError::Codestream("jp2c before signature".into()));
            }
            return Ok(&data[payload_start..p + box_len]);
        }
        p += box_len;
    }
    Err(CodecError::Codestream(
        "no contiguous codestream box".into(),
    ))
}

/// True if `data` looks like a JP2 container (vs. a raw codestream, which
/// begins with the SOC marker FF4F).
pub fn is_jp2(data: &[u8]) -> bool {
    data.len() >= 12 && &data[4..8] == BOX_SIGNATURE && data[8..12] == SIGNATURE_PAYLOAD
}

/// Decode either a raw codestream or a JP2 container.
pub fn decode_auto(data: &[u8]) -> Result<imgio::Image, CodecError> {
    if is_jp2(data) {
        crate::decode(unwrap(data)?)
    } else {
        crate::decode(data)
    }
}

/// Summary of the container boxes (for `j2kcell info`).
pub fn describe(data: &[u8]) -> Result<(MainHeader, usize), CodecError> {
    let cs = if is_jp2(data) { unwrap(data)? } else { data };
    Ok((codestream::parse(cs)?.header, cs.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncoderParams;
    use imgio::synth;

    #[test]
    fn wrap_unwrap_roundtrip() {
        let im = synth::natural_rgb(48, 32, 3);
        let cs = crate::encode(&im, &EncoderParams::lossless()).unwrap();
        let jp2 = wrap(&cs).unwrap();
        assert!(is_jp2(&jp2));
        assert!(!is_jp2(&cs));
        assert_eq!(unwrap(&jp2).unwrap(), &cs[..]);
        assert_eq!(decode_auto(&jp2).unwrap(), im);
        assert_eq!(decode_auto(&cs).unwrap(), im);
    }

    #[test]
    fn box_structure_is_canonical() {
        let im = synth::natural(16, 16, 1);
        let cs = crate::encode(
            &im,
            &EncoderParams {
                levels: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let jp2 = wrap(&cs).unwrap();
        // Signature box is exactly the fixed 12 bytes.
        assert_eq!(
            &jp2[..12],
            &[0, 0, 0, 12, b'j', b'P', 0x20, 0x20, 0x0D, 0x0A, 0x87, 0x0A]
        );
        // ftyp follows with brand jp2.
        assert_eq!(&jp2[16..20], b"ftyp");
        assert_eq!(&jp2[20..24], b"jp2\x20");
        // ihdr geometry matches.
        let ihdr_pos = jp2.windows(4).position(|w| w == b"ihdr").unwrap();
        let h = u32::from_be_bytes(jp2[ihdr_pos + 4..ihdr_pos + 8].try_into().unwrap());
        let w = u32::from_be_bytes(jp2[ihdr_pos + 8..ihdr_pos + 12].try_into().unwrap());
        assert_eq!((w, h), (16, 16));
    }

    #[test]
    fn grayscale_gets_grey_colourspace() {
        let im = synth::natural(8, 8, 2);
        let cs = crate::encode(
            &im,
            &EncoderParams {
                levels: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let jp2 = wrap(&cs).unwrap();
        let colr_pos = jp2.windows(4).position(|w| w == b"colr").unwrap();
        let cs_val = u32::from_be_bytes(jp2[colr_pos + 7..colr_pos + 11].try_into().unwrap());
        assert_eq!(cs_val, 17);
    }

    #[test]
    fn rejects_garbage() {
        assert!(unwrap(b"definitely not a jp2 file").is_err());
        assert!(unwrap(&[]).is_err());
        let im = synth::natural(8, 8, 1);
        let cs = crate::encode(
            &im,
            &EncoderParams {
                levels: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let mut jp2 = wrap(&cs).unwrap();
        jp2.truncate(jp2.len() - 10);
        assert!(unwrap(&jp2).is_err());
    }

    #[test]
    fn describe_both_formats() {
        let im = synth::natural(24, 24, 5);
        let cs = crate::encode(
            &im,
            &EncoderParams {
                levels: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let (h1, l1) = describe(&cs).unwrap();
        let (h2, l2) = describe(&wrap(&cs).unwrap()).unwrap();
        assert_eq!(h1, h2);
        assert_eq!(l1, l2);
        assert_eq!(h1.width, 24);
    }
}
