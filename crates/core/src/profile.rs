//! Workload profiles: the measured operation counts that drive the
//! machine models.
//!
//! The encoder measures its own work — samples per stage, MQ decisions per
//! code block, rate-control search effort, output bytes — and the `cell`
//! module (and the `baselines` crate) schedule that measured work under
//! different machine configurations. This keeps the simulated timings tied
//! to the *actual* computation, not to analytic guesses about image
//! content (Tier-1 cost is data dependent, which is exactly why the paper
//! needs a dynamic work queue).

use crate::EncoderParams;
use std::borrow::Cow;

/// Per-code-block Tier-1 work.
#[derive(Debug, Clone, Copy)]
pub struct BlockWork {
    /// Samples in the block.
    pub samples: u64,
    /// Effective Tier-1 work items: MQ decisions plus bypass raw bits
    /// weighted at 1/4 (the raw path skips the coder's renormalization).
    pub symbols: u64,
    /// Coding passes produced.
    pub passes: u64,
    /// Compressed bytes produced (before truncation).
    pub bytes: u64,
}

/// Wall-clock time of one pipeline stage, as measured by the driver that
/// produced the profile.
#[derive(Debug, Clone)]
pub struct StageTime {
    /// Stage name (e.g. "mct", "dwt", "quantize", "tier1"). `Cow` so
    /// dynamically named stages (`chunk-3`, `dwt-level-2`) don't force
    /// a `String` leak to obtain `'static` lifetime.
    pub name: Cow<'static, str>,
    /// Elapsed wall time in seconds.
    pub seconds: f64,
}

impl StageTime {
    /// Build from any static or owned name.
    pub fn new(name: impl Into<Cow<'static, str>>, seconds: f64) -> StageTime {
        StageTime {
            name: name.into(),
            seconds,
        }
    }
}

/// One DWT level's geometry (the region the level transforms).
#[derive(Debug, Clone, Copy)]
pub struct LevelWork {
    /// Region width in samples.
    pub w: u64,
    /// Region height in samples.
    pub h: u64,
}

/// Measured workload of one encode.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Encoder parameters used.
    pub params: EncoderParams,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Component count.
    pub comps: usize,
    /// Total input samples (w * h * comps).
    pub samples: u64,
    /// Raw input bytes.
    pub raw_bytes: u64,
    /// Per-level transform regions (per component; level order fine→deep).
    pub levels: Vec<LevelWork>,
    /// Per-block Tier-1 work, in work-queue order.
    pub blocks: Vec<BlockWork>,
    /// Coding passes examined by the PCRD search (0 when lossless).
    pub rate_control_items: u64,
    /// Budget-shrink retries the lossy rate loop took (0 when the first
    /// assembly fit, and always 0 for lossless).
    pub rate_retries: u64,
    /// Whether the final stream met the lossy byte budget before the
    /// retry loop gave up (always true for lossless).
    pub rate_converged: bool,
    /// Output codestream bytes.
    pub output_bytes: u64,
    /// Measured per-stage wall times, in pipeline order.
    pub stage_times: Vec<StageTime>,
    /// Jobs executed per worker by the host-parallel driver: indices
    /// `0..workers` are the spawned workers, the last entry is the calling
    /// thread (the PPE role, which keeps the remainder chunk). Empty for
    /// non-parallel drivers.
    pub worker_jobs: Vec<u64>,
}

impl WorkloadProfile {
    /// Total Tier-1 MQ decisions.
    pub fn tier1_symbols(&self) -> u64 {
        self.blocks.iter().map(|b| b.symbols).sum()
    }

    /// Total coding passes.
    pub fn total_passes(&self) -> u64 {
        self.blocks.iter().map(|b| b.passes).sum()
    }

    /// Compression ratio achieved (raw / output).
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.output_bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let p = WorkloadProfile {
            params: EncoderParams::lossless(),
            width: 8,
            height: 8,
            comps: 1,
            samples: 64,
            raw_bytes: 64,
            levels: vec![LevelWork { w: 8, h: 8 }],
            blocks: vec![
                BlockWork {
                    samples: 32,
                    symbols: 100,
                    passes: 4,
                    bytes: 10,
                },
                BlockWork {
                    samples: 32,
                    symbols: 50,
                    passes: 2,
                    bytes: 6,
                },
            ],
            rate_control_items: 0,
            rate_retries: 0,
            rate_converged: true,
            output_bytes: 32,
            stage_times: Vec::new(),
            worker_jobs: Vec::new(),
        };
        assert_eq!(p.tier1_symbols(), 150);
        assert_eq!(p.total_passes(), 6);
        assert!((p.compression_ratio() - 2.0).abs() < 1e-12);
    }
}
