//! Tier-1 block-coder selection: the [`BlockCoder`] trait and the
//! [`Coder`] registry that lets the MQ (EBCOT Annex C/D) and HT
//! (Part 15 shaped) backends coexist behind one interface.
//!
//! Every encoder driver (sequential, host-parallel, cell-mapped) and
//! the decoder dispatch through [`Coder::block_coder`]; the choice is
//! signalled in the codestream's COD style byte, so a decoder never
//! guesses. Both backends produce the same [`EncodedBlock`] shape —
//! per-pass terminated segments with rate/distortion bookkeeping — so
//! rate control, packet assembly, and the ordered-merge byte-identity
//! machinery are completely coder-agnostic.

use crate::CodecError;
use ebcot::block::{BandKind, EncodedBlock};

/// Which Tier-1 block coder a codestream uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Coder {
    /// EBCOT MQ bit-plane coder (Part 1): best rate, per-plane passes.
    #[default]
    Mq,
    /// High-throughput quad coder (Part 15 shaped): single cleanup pass
    /// over the upper planes + raw refinement passes, ~an order of
    /// magnitude fewer Tier-1 work items per sample for a small rate
    /// premium.
    Ht,
}

impl Coder {
    /// Stable lowercase name, used on metrics/JSON surfaces and CLI.
    pub fn name(self) -> &'static str {
        match self {
            Coder::Mq => "mq",
            Coder::Ht => "ht",
        }
    }

    /// Numeric id used as a trace-span argument (span args are u64):
    /// 0 = mq, 1 = ht.
    pub fn id(self) -> u64 {
        match self {
            Coder::Mq => 0,
            Coder::Ht => 1,
        }
    }

    /// Parse a CLI/wire name.
    pub fn parse(s: &str) -> Option<Coder> {
        match s {
            "mq" => Some(Coder::Mq),
            "ht" => Some(Coder::Ht),
            _ => None,
        }
    }

    /// The backend implementation.
    pub fn block_coder(self) -> &'static dyn BlockCoder {
        match self {
            Coder::Mq => &MqBlockCoder,
            Coder::Ht => &HtBlockCoder,
        }
    }
}

impl std::fmt::Display for Coder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One Tier-1 backend. `encode` is infallible (both backends accept any
/// quantizer-index block); `decode` is fallible because the HT decoder
/// validates stream structure and hosts the `ht.quad` failpoint.
pub trait BlockCoder: Sync {
    /// Stable name (matches [`Coder::name`]).
    fn name(&self) -> &'static str;

    /// Encode one code block of signed quantizer indices.
    fn encode(
        &self,
        data: &[i32],
        w: usize,
        h: usize,
        kind: BandKind,
        bypass: bool,
    ) -> EncodedBlock;

    /// Decode the first `num_passes` passes back to quantizer indices.
    #[allow(clippy::too_many_arguments)]
    fn decode(
        &self,
        data: &[u8],
        pass_ends: &[usize],
        num_passes: usize,
        w: usize,
        h: usize,
        kind: BandKind,
        num_planes: u8,
        midpoint: bool,
        bypass: bool,
    ) -> Result<Vec<i32>, CodecError>;
}

struct MqBlockCoder;

impl BlockCoder for MqBlockCoder {
    fn name(&self) -> &'static str {
        "mq"
    }

    fn encode(
        &self,
        data: &[i32],
        w: usize,
        h: usize,
        kind: BandKind,
        bypass: bool,
    ) -> EncodedBlock {
        ebcot::block::encode_block_opts(data, w, h, kind, bypass)
    }

    fn decode(
        &self,
        data: &[u8],
        pass_ends: &[usize],
        num_passes: usize,
        w: usize,
        h: usize,
        kind: BandKind,
        num_planes: u8,
        midpoint: bool,
        bypass: bool,
    ) -> Result<Vec<i32>, CodecError> {
        Ok(ebcot::block::decode_block_opts(
            data, pass_ends, num_passes, w, h, kind, num_planes, midpoint, bypass,
        ))
    }
}

struct HtBlockCoder;

impl BlockCoder for HtBlockCoder {
    fn name(&self) -> &'static str {
        "ht"
    }

    fn encode(
        &self,
        data: &[i32],
        w: usize,
        h: usize,
        _kind: BandKind,
        _bypass: bool,
    ) -> EncodedBlock {
        // The HT cleanup needs no band-orientation context tables, and
        // its refinement passes are always raw — `bypass` is a no-op.
        j2k_ht::encode_block(data, w, h)
    }

    fn decode(
        &self,
        data: &[u8],
        pass_ends: &[usize],
        num_passes: usize,
        w: usize,
        h: usize,
        _kind: BandKind,
        num_planes: u8,
        midpoint: bool,
        _bypass: bool,
    ) -> Result<Vec<i32>, CodecError> {
        j2k_ht::decode_block(data, pass_ends, num_passes, w, h, num_planes, midpoint).map_err(|e| {
            match e {
                j2k_ht::HtError::Injected(m) => CodecError::Injected(m),
                j2k_ht::HtError::Malformed(m) => CodecError::Codestream(m),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_maps_names_and_ids() {
        for c in [Coder::Mq, Coder::Ht] {
            assert_eq!(Coder::parse(c.name()), Some(c));
            assert_eq!(c.block_coder().name(), c.name());
            assert_eq!(format!("{c}"), c.name());
        }
        assert_eq!(Coder::parse("j2k"), None);
        assert_eq!(Coder::default(), Coder::Mq);
        assert_eq!(Coder::Mq.id(), 0);
        assert_eq!(Coder::Ht.id(), 1);
    }

    #[test]
    fn both_backends_roundtrip_through_the_trait() {
        let data: Vec<i32> = (0..64).map(|i| (i * 37 % 101) - 50).collect();
        for c in [Coder::Mq, Coder::Ht] {
            let bc = c.block_coder();
            let enc = bc.encode(&data, 8, 8, BandKind::LlLh, false);
            let back = bc
                .decode(
                    &enc.data,
                    &enc.pass_ends,
                    enc.passes.len(),
                    8,
                    8,
                    BandKind::LlLh,
                    enc.num_planes,
                    false,
                    false,
                )
                .unwrap();
            assert_eq!(back, data, "{}", c.name());
        }
    }
}
