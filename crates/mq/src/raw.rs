//! Raw (bypass / "lazy") bit coding, JPEG2000 Annex D.5.
//!
//! In selective arithmetic-coding-bypass mode, significance-propagation and
//! magnitude-refinement passes beyond the fourth bit-plane emit raw bits.
//! Raw segments still obey the no-marker rule: after a 0xFF byte only 7 bits
//! are used in the next byte (the MSB is a stuffed 0).

/// Raw bit writer with 0xFF stuffing.
#[derive(Debug, Clone, Default)]
pub struct RawEncoder {
    out: Vec<u8>,
    /// Bits pending in `byte`, MSB first.
    byte: u8,
    used: u8,
    /// Capacity of the current byte: 7 after an 0xFF, else 8.
    cap: u8,
}

impl RawEncoder {
    /// A fresh raw encoder.
    pub fn new() -> Self {
        RawEncoder {
            out: Vec::new(),
            byte: 0,
            used: 0,
            cap: 8,
        }
    }

    /// Append one bit.
    pub fn put(&mut self, bit: u8) {
        debug_assert!(bit <= 1);
        self.byte = (self.byte << 1) | bit;
        self.used += 1;
        if self.used == self.cap {
            self.flush_byte();
        }
    }

    fn flush_byte(&mut self) {
        // A 7-bit byte after 0xFF is emitted left-aligned below the stuffed
        // zero MSB, i.e. as-is in the low 7 bits.
        let b = self.byte;
        self.out.push(b);
        self.cap = if b == 0xFF { 7 } else { 8 };
        self.byte = 0;
        self.used = 0;
    }

    /// Pad the final partial byte with 1-bits? No — the standard pads raw
    /// segments with 0s to the byte boundary; a terminal 0xFF is dropped.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.byte <<= self.cap - self.used;
            self.flush_byte();
        }
        if let Some(&0xFF) = self.out.last() {
            self.out.pop();
        }
        self.out
    }

    /// Bytes emitted so far (excluding the partial byte).
    pub fn bytes_so_far(&self) -> usize {
        self.out.len()
    }
}

/// Raw bit reader, mirror of [`RawEncoder`]; reads past the end return 1s.
#[derive(Debug, Clone)]
pub struct RawDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    byte: u8,
    left: u8,
    prev_ff: bool,
}

impl<'a> RawDecoder<'a> {
    /// A raw decoder over a (possibly truncated) segment.
    pub fn new(data: &'a [u8]) -> Self {
        RawDecoder {
            data,
            pos: 0,
            byte: 0,
            left: 0,
            prev_ff: false,
        }
    }

    /// Bytes consumed so far (including the partially read byte). Packet
    /// header parsing uses this to find the byte-aligned end of a header.
    pub fn bytes_consumed(&self) -> usize {
        self.pos
    }

    /// Read one bit.
    pub fn get(&mut self) -> u8 {
        if self.left == 0 {
            let b = self.data.get(self.pos).copied().unwrap_or(0xFF);
            self.pos += 1;
            if self.prev_ff {
                // Stuffed byte: MSB is a guaranteed 0, only 7 payload bits.
                self.byte = b << 1;
                self.left = 7;
            } else {
                self.byte = b;
                self.left = 8;
            }
            self.prev_ff = b == 0xFF;
        }
        let bit = self.byte >> 7;
        self.byte <<= 1;
        self.left -= 1;
        bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_random_bits() {
        let mut x: u32 = 42;
        let bits: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                ((x >> 17) & 1) as u8
            })
            .collect();
        let mut enc = RawEncoder::new();
        for &b in &bits {
            enc.put(b);
        }
        let bytes = enc.finish();
        let mut dec = RawDecoder::new(&bytes);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.get(), b, "bit {i}");
        }
    }

    #[test]
    fn roundtrip_all_ones_respects_stuffing() {
        let mut enc = RawEncoder::new();
        for _ in 0..64 {
            enc.put(1);
        }
        let bytes = enc.finish();
        for w in bytes.windows(2) {
            if w[0] == 0xFF {
                assert!(w[1] < 0x80, "stuffed bit missing after FF: {:02X}", w[1]);
            }
        }
        let mut dec = RawDecoder::new(&bytes);
        for i in 0..64 {
            assert_eq!(dec.get(), 1, "bit {i}");
        }
    }

    #[test]
    fn empty_is_empty() {
        assert!(RawEncoder::new().finish().is_empty());
    }
}
