//! MQ decoder (JPEG2000 Annex C.3, software-conventions form).

use crate::table::QE_TABLE;
use crate::Contexts;

/// The MQ arithmetic decoder, mirror of [`crate::MqEncoder`].
///
/// Reads past the end of the segment are modelled as the standard requires:
/// once the input is exhausted the decoder feeds `0xFF` fill bytes (`1`
/// bits), which is what lets truncated coding passes still decode a prefix.
#[derive(Debug, Clone)]
pub struct MqDecoder<'a> {
    data: &'a [u8],
    bp: usize,
    c: u32,
    a: u32,
    ct: i32,
    symbols: u64,
}

impl<'a> MqDecoder<'a> {
    /// INITDEC over a (possibly truncated) MQ segment.
    pub fn new(data: &'a [u8]) -> Self {
        let mut d = MqDecoder {
            data,
            bp: 0,
            c: 0,
            a: 0,
            ct: 0,
            symbols: 0,
        };
        d.c = (d.byte_at(0) as u32) << 16;
        d.byte_in();
        d.c <<= 7;
        d.ct -= 7;
        d.a = 0x8000;
        d
    }

    /// Number of decisions decoded so far.
    #[inline]
    pub fn symbols(&self) -> u64 {
        self.symbols
    }

    #[inline]
    fn byte_at(&self, i: usize) -> u8 {
        // Past-the-end bytes read as 0xFF (marker-like), per C.3.4.
        self.data.get(i).copied().unwrap_or(0xFF)
    }

    /// BYTEIN with bit-unstuffing.
    fn byte_in(&mut self) {
        if self.byte_at(self.bp) == 0xFF {
            if self.byte_at(self.bp + 1) > 0x8F {
                // Marker (or synthesized end-of-data): feed 1-bits.
                self.c += 0xFF00;
                self.ct = 8;
            } else {
                self.bp += 1;
                self.c += (self.byte_at(self.bp) as u32) << 9;
                self.ct = 7;
            }
        } else {
            self.bp += 1;
            self.c += (self.byte_at(self.bp) as u32) << 8;
            self.ct = 8;
        }
    }

    /// DECODE one decision in context `cx`.
    #[inline]
    pub fn decode(&mut self, ctxs: &mut Contexts, cx: usize) -> u8 {
        self.symbols += 1;
        let st = ctxs.get_mut(cx);
        let row = QE_TABLE[st.index as usize];
        let qe = row.qe as u32;
        self.a -= qe;
        let d;
        if (self.c >> 16) < qe {
            // LPS exchange path.
            if self.a < qe {
                self.a = qe;
                d = st.mps;
                st.index = row.nmps;
            } else {
                self.a = qe;
                d = 1 - st.mps;
                if row.switch_mps == 1 {
                    st.mps ^= 1;
                }
                st.index = row.nlps;
            }
            self.renorm();
        } else {
            self.c -= qe << 16;
            if self.a & 0x8000 == 0 {
                // MPS exchange path.
                if self.a < qe {
                    d = 1 - st.mps;
                    if row.switch_mps == 1 {
                        st.mps ^= 1;
                    }
                    st.index = row.nlps;
                } else {
                    d = st.mps;
                    st.index = row.nmps;
                }
                self.renorm();
            } else {
                d = st.mps;
            }
        }
        d
    }

    /// RENORMD.
    fn renorm(&mut self) {
        loop {
            if self.ct == 0 {
                self.byte_in();
            }
            self.a <<= 1;
            self.c <<= 1;
            self.ct -= 1;
            if self.a & 0x8000 != 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Contexts, MqEncoder};

    fn roundtrip(seq: &[(usize, u8)], nctx: usize) {
        let mut ectx = Contexts::new(nctx);
        let mut enc = MqEncoder::new();
        for &(cx, d) in seq {
            enc.encode(&mut ectx, cx, d);
        }
        let bytes = enc.finish();
        let mut dctx = Contexts::new(nctx);
        let mut dec = MqDecoder::new(&bytes);
        for (i, &(cx, d)) in seq.iter().enumerate() {
            let got = dec.decode(&mut dctx, cx);
            assert_eq!(got, d, "symbol {i} of {}", seq.len());
        }
    }

    #[test]
    fn roundtrip_simple_patterns() {
        roundtrip(&[(0, 1)], 1);
        roundtrip(&[(0, 0), (0, 1), (0, 0), (0, 1)], 1);
        let ones: Vec<_> = (0..1000).map(|_| (0usize, 1u8)).collect();
        roundtrip(&ones, 1);
        let zeros: Vec<_> = (0..1000).map(|_| (0usize, 0u8)).collect();
        roundtrip(&zeros, 1);
    }

    #[test]
    fn roundtrip_multi_context_lcg() {
        let mut x: u32 = 0xDEADBEEF;
        let seq: Vec<(usize, u8)> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                ((x >> 9) as usize % 19, ((x >> 21) & 1) as u8)
            })
            .collect();
        roundtrip(&seq, 19);
    }

    #[test]
    fn roundtrip_skewed_sources() {
        // 1-in-16 ones: exercises the fast-attack part of the table.
        let mut x: u32 = 7;
        let seq: Vec<(usize, u8)> = (0..30_000)
            .map(|_| {
                x = x.wrapping_mul(22695477).wrapping_add(1);
                (0usize, u8::from((x >> 16).is_multiple_of(16)))
            })
            .collect();
        roundtrip(&seq, 1);
    }

    #[test]
    fn decoder_survives_truncation() {
        // Decoding from a truncated segment must not panic and must still
        // return *some* decisions (the standard guarantees a decodable
        // prefix; we check robustness, not the exact prefix length).
        let mut ectx = Contexts::new(2);
        let mut enc = MqEncoder::new();
        let mut x: u32 = 99;
        let mut seq = Vec::new();
        for _ in 0..5_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let cx = (x >> 5) as usize % 2;
            let d = ((x >> 11) & 1) as u8;
            seq.push((cx, d));
            enc.encode(&mut ectx, cx, d);
        }
        let bytes = enc.finish();
        let cut = bytes.len() / 2;
        let mut dctx = Contexts::new(2);
        let mut dec = MqDecoder::new(&bytes[..cut]);
        let mut correct_prefix = 0usize;
        for &(cx, d) in &seq {
            if dec.decode(&mut dctx, cx) == d {
                correct_prefix += 1;
            } else {
                break;
            }
        }
        // At least ~cut bytes worth of decisions decode correctly.
        assert!(correct_prefix > 100, "only {correct_prefix} correct");
    }
}
