//! MQ encoder (JPEG2000 Annex C.2, software-conventions form).

use crate::table::QE_TABLE;
use crate::Contexts;

/// The MQ arithmetic encoder.
///
/// Register conventions follow the standard's software implementation:
/// `c` is the 28-bit code register (carry appears at bit 27), `a` the 16-bit
/// interval register renormalized to keep `a >= 0x8000`, `ct` the downcounter
/// to the next byte emission.
///
/// The output buffer keeps a sentinel byte at index 0 standing in for the
/// "B-1" position of the standard's pointer arithmetic; [`MqEncoder::finish`]
/// strips it.
#[derive(Debug, Clone)]
pub struct MqEncoder {
    c: u32,
    a: u32,
    ct: i32,
    /// Output bytes; `out[0]` is the sentinel, `bp` indexes the byte the
    /// standard calls `B`.
    out: Vec<u8>,
    bp: usize,
    /// Total decisions encoded (used by cost models and rate estimation).
    symbols: u64,
}

impl Default for MqEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl MqEncoder {
    /// INITENC.
    pub fn new() -> Self {
        MqEncoder {
            c: 0,
            a: 0x8000,
            ct: 12,
            out: vec![0u8],
            bp: 0,
            symbols: 0,
        }
    }

    /// Number of decisions encoded so far.
    #[inline]
    pub fn symbols(&self) -> u64 {
        self.symbols
    }

    /// Bytes that would be emitted if the coder were flushed right now,
    /// *excluding* the sentinel. This is the standard's `B - start` count
    /// used for per-pass rate accounting (an upper bound before flush).
    #[inline]
    pub fn bytes_so_far(&self) -> usize {
        self.bp
    }

    /// ENCODE one `decision` in context `cx` of `ctxs`.
    #[inline]
    pub fn encode(&mut self, ctxs: &mut Contexts, cx: usize, decision: u8) {
        self.symbols += 1;
        let st = ctxs.get_mut(cx);
        let qe = QE_TABLE[st.index as usize].qe as u32;
        if decision == st.mps {
            // CODEMPS
            self.a -= qe;
            if self.a & 0x8000 == 0 {
                if self.a < qe {
                    self.a = qe;
                } else {
                    self.c += qe;
                }
                st.index = QE_TABLE[st.index as usize].nmps;
                self.renorm();
            } else {
                self.c += qe;
            }
        } else {
            // CODELPS
            self.a -= qe;
            if self.a < qe {
                self.c += qe;
            } else {
                self.a = qe;
            }
            let row = QE_TABLE[st.index as usize];
            if row.switch_mps == 1 {
                st.mps ^= 1;
            }
            st.index = row.nlps;
            self.renorm();
        }
    }

    /// RENORME.
    fn renorm(&mut self) {
        loop {
            self.a <<= 1;
            self.c <<= 1;
            self.ct -= 1;
            if self.ct == 0 {
                self.byte_out();
            }
            if self.a & 0x8000 != 0 {
                break;
            }
        }
    }

    /// BYTEOUT with 0xFF bit-stuffing.
    fn byte_out(&mut self) {
        if self.out[self.bp] == 0xFF {
            self.bp += 1;
            self.push(((self.c >> 20) & 0xFF) as u8);
            self.c &= 0xF_FFFF;
            self.ct = 7;
        } else if self.c & 0x800_0000 == 0 {
            self.bp += 1;
            self.push(((self.c >> 19) & 0xFF) as u8);
            self.c &= 0x7_FFFF;
            self.ct = 8;
        } else {
            // Propagate carry into B.
            self.out[self.bp] = self.out[self.bp].wrapping_add(1);
            if self.out[self.bp] == 0xFF {
                self.c &= 0x7FF_FFFF;
                self.bp += 1;
                self.push(((self.c >> 20) & 0xFF) as u8);
                self.c &= 0xF_FFFF;
                self.ct = 7;
            } else {
                self.bp += 1;
                self.push(((self.c >> 19) & 0xFF) as u8);
                self.c &= 0x7_FFFF;
                self.ct = 8;
            }
        }
    }

    #[inline]
    fn push(&mut self, b: u8) {
        debug_assert_eq!(self.bp, self.out.len());
        self.out.push(b);
    }

    /// FLUSH: SETBITS, emit the remaining register contents, and return the
    /// finished byte stream (sentinel stripped, trailing 0xFF dropped per the
    /// standard's "if B == 0xFF, discard" rule).
    pub fn finish(mut self) -> Vec<u8> {
        // SETBITS
        let tempc = self.c + self.a;
        self.c |= 0xFFFF;
        if self.c >= tempc {
            self.c -= 0x8000;
        }
        self.c <<= self.ct;
        self.byte_out();
        self.c <<= self.ct;
        self.byte_out();
        // Strip sentinel; drop a trailing 0xFF (it carries no information and
        // may not legally end a segment).
        let mut v = self.out;
        v.remove(0);
        // bp counted bytes written after the sentinel; truncate spare slots.
        if let Some(&0xFF) = v.last() {
            v.pop();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Contexts;

    #[test]
    fn empty_flush_is_small() {
        let enc = MqEncoder::new();
        let bytes = enc.finish();
        // Flushing an empty coder produces at most a few bytes.
        assert!(bytes.len() <= 3, "{bytes:?}");
    }

    #[test]
    fn all_mps_compresses_hard() {
        let mut ctxs = Contexts::new(1);
        let mut enc = MqEncoder::new();
        for _ in 0..10_000 {
            enc.encode(&mut ctxs, 0, 0);
        }
        assert_eq!(enc.symbols(), 10_000);
        let bytes = enc.finish();
        // 10k highly-predictable symbols should land well under 100 bytes.
        assert!(bytes.len() < 100, "got {} bytes", bytes.len());
    }

    #[test]
    fn alternating_bits_cost_about_one_bit_each() {
        let mut ctxs = Contexts::new(1);
        let mut enc = MqEncoder::new();
        let n = 8_192usize;
        for i in 0..n {
            enc.encode(&mut ctxs, 0, (i & 1) as u8);
        }
        let bytes = enc.finish();
        let bits_per_symbol = (bytes.len() * 8) as f64 / n as f64;
        assert!(
            (0.9..1.2).contains(&bits_per_symbol),
            "bits/symbol = {bits_per_symbol}"
        );
    }

    #[test]
    fn no_marker_bytes_in_output_interior() {
        // After any 0xFF the next byte must be < 0x90 (bit stuffing).
        let mut ctxs = Contexts::new(4);
        let mut enc = MqEncoder::new();
        let mut x: u32 = 123456789;
        for _ in 0..50_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let cx = (x >> 7) as usize % 4;
            let d = ((x >> 13) & 1) as u8;
            enc.encode(&mut ctxs, cx, d);
        }
        let bytes = enc.finish();
        for w in bytes.windows(2) {
            if w[0] == 0xFF {
                assert!(w[1] < 0x90, "marker {:02X}{:02X} in MQ output", w[0], w[1]);
            }
        }
    }
}
