//! MQ binary arithmetic coder (JPEG2000 Part 1, Annex C / ITU-T T.88).
//!
//! The MQ coder is the entropy-coding engine inside EBCOT Tier-1: a
//! multiplication-free, renormalization-driven binary arithmetic coder with a
//! 47-state probability estimation table and 0xFF byte-stuffing so that no
//! two consecutive codestream bytes ever form a marker (`>= 0xFF90`).
//!
//! This crate provides:
//! * [`MqEncoder`] / [`MqDecoder`] — the adaptive coder pair;
//! * [`RawEncoder`] / [`RawDecoder`] — the "lazy" raw bit mode used by the
//!   selective arithmetic-coding-bypass option;
//! * [`Contexts`] — a bank of adaptive context states shared by both.
//!
//! Correctness is established by exhaustive encode→decode round-trips over
//! random (context, decision) sequences (see `tests/roundtrip.rs`) and by
//! known-answer tests for byte-stuffing edge cases.

mod decoder;
mod encoder;
mod raw;
mod table;

pub use decoder::MqDecoder;
pub use encoder::MqEncoder;
pub use raw::{RawDecoder, RawEncoder};
pub use table::{QeRow, QE_TABLE};

/// One adaptive context: an index into [`QE_TABLE`] plus the current
/// most-probable-symbol sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CtxState {
    /// Probability-estimation state, `0..47`.
    pub index: u8,
    /// Most probable symbol, 0 or 1.
    pub mps: u8,
}

impl CtxState {
    /// A context starting at a specific table state with MPS = 0.
    pub const fn at(index: u8) -> Self {
        CtxState { index, mps: 0 }
    }
}

/// A bank of `N` adaptive contexts.
///
/// EBCOT uses 19 (labels 0..=18); the bank size is a parameter so the coder
/// is reusable for other bit modelers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contexts {
    states: Vec<CtxState>,
}

impl Contexts {
    /// `n` contexts, all at table state 0 / MPS 0.
    pub fn new(n: usize) -> Self {
        Contexts {
            states: vec![CtxState::default(); n],
        }
    }

    /// Number of contexts in the bank.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the bank is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Read context `cx`.
    #[inline]
    pub fn get(&self, cx: usize) -> CtxState {
        self.states[cx]
    }

    /// Overwrite context `cx` (used to apply codec-specific initial states).
    #[inline]
    pub fn set(&mut self, cx: usize, s: CtxState) {
        self.states[cx] = s;
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, cx: usize) -> &mut CtxState {
        &mut self.states[cx]
    }

    /// Reset every context to table state 0 / MPS 0.
    pub fn reset(&mut self) {
        for s in &mut self.states {
            *s = CtxState::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_bank_basics() {
        let mut c = Contexts::new(19);
        assert_eq!(c.len(), 19);
        assert!(!c.is_empty());
        c.set(17, CtxState::at(3));
        assert_eq!(c.get(17), CtxState { index: 3, mps: 0 });
        c.reset();
        assert_eq!(c.get(17), CtxState::default());
    }

    #[test]
    fn qe_table_invariants() {
        assert_eq!(QE_TABLE.len(), 47);
        for (i, row) in QE_TABLE.iter().enumerate() {
            assert!((row.nmps as usize) < 47, "row {i} nmps");
            assert!((row.nlps as usize) < 47, "row {i} nlps");
            assert!(row.qe >= 0x0001 && row.qe <= 0x5601, "row {i} qe range");
            assert!(row.switch_mps == 0 || row.switch_mps == 1);
        }
        // Terminal / non-adaptive states named in the standard.
        assert_eq!(QE_TABLE[46].nmps, 46);
        assert_eq!(QE_TABLE[46].nlps, 46);
        assert_eq!(QE_TABLE[45].nmps, 45);
        // The startup fast-attack chain: states 0..=5 jump widely.
        assert_eq!(QE_TABLE[0].nmps, 1);
        assert_eq!(QE_TABLE[0].switch_mps, 1);
    }
}
