//! The 47-state probability estimation table (JPEG2000 Table C.2).

/// One row of the Qe table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QeRow {
    /// LPS probability estimate, 16-bit fixed point.
    pub qe: u16,
    /// Next state after an MPS renormalization.
    pub nmps: u8,
    /// Next state after an LPS renormalization.
    pub nlps: u8,
    /// 1 if the MPS sense flips on an LPS in this state.
    pub switch_mps: u8,
}

const fn row(qe: u16, nmps: u8, nlps: u8, switch_mps: u8) -> QeRow {
    QeRow {
        qe,
        nmps,
        nlps,
        switch_mps,
    }
}

/// JPEG2000 Part 1 Table C.2 (identical to ITU-T T.88 Table E.1).
pub const QE_TABLE: [QeRow; 47] = [
    row(0x5601, 1, 1, 1),
    row(0x3401, 2, 6, 0),
    row(0x1801, 3, 9, 0),
    row(0x0AC1, 4, 12, 0),
    row(0x0521, 5, 29, 0),
    row(0x0221, 38, 33, 0),
    row(0x5601, 7, 6, 1),
    row(0x5401, 8, 14, 0),
    row(0x4801, 9, 14, 0),
    row(0x3801, 10, 14, 0),
    row(0x3001, 11, 17, 0),
    row(0x2401, 12, 18, 0),
    row(0x1C01, 13, 20, 0),
    row(0x1601, 29, 21, 0),
    row(0x5601, 15, 14, 1),
    row(0x5401, 16, 14, 0),
    row(0x5101, 17, 15, 0),
    row(0x4801, 18, 16, 0),
    row(0x3801, 19, 17, 0),
    row(0x3401, 20, 18, 0),
    row(0x3001, 21, 19, 0),
    row(0x2801, 22, 19, 0),
    row(0x2401, 23, 20, 0),
    row(0x2201, 24, 21, 0),
    row(0x1C01, 25, 22, 0),
    row(0x1801, 26, 23, 0),
    row(0x1601, 27, 24, 0),
    row(0x1401, 28, 25, 0),
    row(0x1201, 29, 26, 0),
    row(0x1101, 30, 27, 0),
    row(0x0AC1, 31, 28, 0),
    row(0x09C1, 32, 29, 0),
    row(0x08A1, 33, 30, 0),
    row(0x0521, 34, 31, 0),
    row(0x0441, 35, 32, 0),
    row(0x02A1, 36, 33, 0),
    row(0x0221, 37, 34, 0),
    row(0x0141, 38, 35, 0),
    row(0x0111, 39, 36, 0),
    row(0x0085, 40, 37, 0),
    row(0x0049, 41, 38, 0),
    row(0x0025, 42, 39, 0),
    row(0x0015, 43, 40, 0),
    row(0x0009, 44, 41, 0),
    row(0x0005, 45, 42, 0),
    row(0x0001, 45, 43, 0),
    row(0x5601, 46, 46, 0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_states_make_progress_towards_smaller_qe() {
        // Along the steady-state MPS chain (14..=45), Qe is non-increasing.
        for (i, st) in QE_TABLE.iter().enumerate().take(45).skip(14) {
            let next = st.nmps as usize;
            assert!(
                QE_TABLE[next].qe <= st.qe,
                "state {i} -> {next} increases Qe"
            );
        }
    }

    #[test]
    fn switch_only_on_equiprobable_states() {
        for (i, r) in QE_TABLE.iter().enumerate() {
            if r.switch_mps == 1 {
                assert_eq!(r.qe, 0x5601, "switch state {i} must be near-equiprobable");
            }
        }
    }
}
