//! Property tests: the MQ and raw coders are lossless over arbitrary
//! (context, decision) sequences.

use mqcoder::{Contexts, CtxState, MqDecoder, MqEncoder, RawDecoder, RawEncoder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mq_roundtrip_arbitrary_sequences(
        seq in prop::collection::vec((0usize..19, 0u8..2), 0..4000),
    ) {
        let mut ectx = Contexts::new(19);
        let mut enc = MqEncoder::new();
        for &(cx, d) in &seq {
            enc.encode(&mut ectx, cx, d);
        }
        let bytes = enc.finish();
        let mut dctx = Contexts::new(19);
        let mut dec = MqDecoder::new(&bytes);
        for &(cx, d) in &seq {
            prop_assert_eq!(dec.decode(&mut dctx, cx), d);
        }
    }

    #[test]
    fn mq_roundtrip_with_ebcot_initial_states(
        seq in prop::collection::vec((0usize..19, 0u8..2), 1..2000),
    ) {
        // EBCOT's initial states (ctx 0 -> 4, run-length 17 -> 3, uniform
        // 18 -> 46) must round-trip as long as both sides agree.
        let init = |ctxs: &mut Contexts| {
            ctxs.set(0, CtxState::at(4));
            ctxs.set(17, CtxState::at(3));
            ctxs.set(18, CtxState::at(46));
        };
        let mut ectx = Contexts::new(19);
        init(&mut ectx);
        let mut enc = MqEncoder::new();
        for &(cx, d) in &seq {
            enc.encode(&mut ectx, cx, d);
        }
        let bytes = enc.finish();
        let mut dctx = Contexts::new(19);
        init(&mut dctx);
        let mut dec = MqDecoder::new(&bytes);
        for &(cx, d) in &seq {
            prop_assert_eq!(dec.decode(&mut dctx, cx), d);
        }
    }

    #[test]
    fn mq_output_never_contains_a_marker(
        seq in prop::collection::vec((0usize..19, 0u8..2), 0..4000),
    ) {
        let mut ectx = Contexts::new(19);
        let mut enc = MqEncoder::new();
        for &(cx, d) in &seq {
            enc.encode(&mut ectx, cx, d);
        }
        let bytes = enc.finish();
        for w in bytes.windows(2) {
            prop_assert!(!(w[0] == 0xFF && w[1] >= 0x90),
                "marker FF{:02X} inside MQ segment", w[1]);
        }
    }

    #[test]
    fn raw_roundtrip_arbitrary_bits(bits in prop::collection::vec(0u8..2, 0..4000)) {
        let mut enc = RawEncoder::new();
        for &b in &bits {
            enc.put(b);
        }
        let bytes = enc.finish();
        let mut dec = RawDecoder::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(dec.get(), b);
        }
    }

    #[test]
    fn mq_compresses_biased_sources(bias in 4u32..32) {
        // A source with P(1) = 1/bias (entropy <= 0.82 bits) must compress
        // below 1 bit/symbol even with adaptation overhead.
        let n = 20_000u32;
        let mut x: u32 = 0x1234_5678;
        let mut ectx = Contexts::new(1);
        let mut enc = MqEncoder::new();
        for _ in 0..n {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let d = u8::from((x >> 16).is_multiple_of(bias));
            enc.encode(&mut ectx, 0, d);
        }
        let bytes = enc.finish();
        let bps = bytes.len() as f64 * 8.0 / n as f64;
        prop_assert!(bps < 1.0, "bias {bias}: {bps} bits/symbol");
    }
}
