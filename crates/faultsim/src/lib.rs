//! Deterministic fault injection for the encode pipeline and service.
//!
//! A **failpoint** is a named callsite (`"dwt.level"`, `"tier1.block"`,
//! `"rate.block"`, `"tier2.precinct"`, `"decode.packet"`, `"queue.pop"`,
//! `"wire.read"`, `"wire.stall"`, `"worker.job_start"`, `"ht.quad"`)
//! that production code evaluates on every pass. A test (or an operator running a chaos
//! drill) **arms** a failpoint with a [`FaultSpec`] — *fire action A
//! starting at the Nth hit, T times* — and the callsite then observes an
//! injected error, an injected delay, or a panic at exactly the scheduled
//! hits. Hit counting is global and monotonic per failpoint, so a seeded
//! schedule replays identically: same arms, same submission order, same
//! faults.
//!
//! Two build modes, selected by the `enabled` cargo feature:
//!
//! * **disabled (default)** — every entry point is an `#[inline(always)]`
//!   stub ([`eval`] returns `None`, [`arm`] returns `false`); after
//!   inlining, callsites compile to nothing. Release/bench builds carry
//!   no registry, no mutex, no counters (asserted by this crate's tests
//!   run without features).
//! * **enabled** — a process-global registry keyed by failpoint name.
//!
//! Panic discipline: [`eval`] never panics *while holding the registry
//! lock* — the armed action is decided under the lock, the lock is
//! dropped, and only then does the action run. A failpoint panic
//! therefore never poisons the registry, and the callsites place their
//! evaluations outside their own critical sections for the same reason.

use std::time::Duration;

/// Whether fault injection is compiled into this build.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Surface an injected error to the callsite ([`eval`] returns
    /// `Some(message)`); the callsite maps it into its local error type.
    Error(String),
    /// Panic at the callsite with the given message — the lever for
    /// exercising `catch_unwind` isolation and worker respawn.
    Panic(String),
    /// Sleep for the given duration, then proceed normally — models a
    /// straggling stage or a slow queue claim.
    Delay(Duration),
}

/// One armed rule: fire [`action`](Self::action) on hits `nth ..
/// nth + times` (1-based hit numbering, `times` capped additions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The action to run when the rule fires.
    pub action: FaultAction,
    /// First hit (1-based) on which the rule fires.
    pub nth: u64,
    /// How many consecutive hits fire, starting at `nth`
    /// (`u64::MAX` = every hit from `nth` on).
    pub times: u64,
}

impl FaultSpec {
    /// Fire `action` exactly once, on the very first hit.
    pub fn once(action: FaultAction) -> Self {
        FaultSpec {
            action,
            nth: 1,
            times: 1,
        }
    }

    /// Fire `action` `times` times starting at hit `nth` (1-based).
    pub fn at(action: FaultAction, nth: u64, times: u64) -> Self {
        FaultSpec { action, nth, times }
    }

    /// Whether this spec fires on 1-based hit number `hit`. Only the
    /// enabled registry consults it, but it is part of the spec's
    /// contract in every build (tests exercise it unconditionally).
    pub fn fires_on(&self, hit: u64) -> bool {
        hit >= self.nth && hit - self.nth < self.times
    }
}

/// One entry of a schedule: a failpoint name plus the spec to arm it with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Failpoint name.
    pub name: String,
    /// The rule to arm.
    pub spec: FaultSpec,
}

/// Parse a schedule from `name=action[@nth][xTIMES][,...]` where action is
/// `error`, `panic`, or `delay:MS`. Examples: `tier1.block=panic@3`,
/// `worker.job_start=panic@1x2`, `queue.pop=delay:5,dwt.level=error@2`.
/// Parsing is available in every build; arming is a no-op when
/// [`ENABLED`] is false.
pub fn parse_schedule(s: &str) -> Result<Vec<ScheduleEntry>, String> {
    let mut out = Vec::new();
    for part in s.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, rhs) = part
            .split_once('=')
            .ok_or_else(|| format!("`{part}`: expected NAME=ACTION[@N][xT]"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("`{part}`: empty failpoint name"));
        }
        let mut rhs = rhs.trim();
        let mut times = 1u64;
        if let Some((head, t)) = rhs.rsplit_once('x') {
            if let Ok(t) = t.parse::<u64>() {
                times = t.max(1);
                rhs = head;
            }
        }
        let mut nth = 1u64;
        if let Some((head, n)) = rhs.rsplit_once('@') {
            nth = n
                .parse::<u64>()
                .map_err(|_| format!("`{part}`: bad hit number `{n}`"))?
                .max(1);
            rhs = head;
        }
        let action = match rhs {
            "error" => FaultAction::Error(format!("injected error at failpoint {name}")),
            "panic" => FaultAction::Panic(format!("injected panic at failpoint {name}")),
            other => match other.split_once(':') {
                Some(("delay", ms)) => {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("`{part}`: bad delay `{ms}`"))?;
                    FaultAction::Delay(Duration::from_millis(ms))
                }
                _ => return Err(format!("`{part}`: unknown action `{other}`")),
            },
        };
        out.push(ScheduleEntry {
            name: name.to_string(),
            spec: FaultSpec { action, nth, times },
        });
    }
    Ok(out)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded random schedule over `names`: `events` rules with mixed
/// actions (errors and panics weighted high, short delays capped at
/// `max_delay_ms`), hit numbers in `1..=max_nth`. Deterministic for a
/// given seed — print the seed, and a failing chaos run replays exactly.
pub fn random_schedule(
    seed: u64,
    names: &[&str],
    events: usize,
    max_nth: u64,
    max_delay_ms: u64,
) -> Vec<ScheduleEntry> {
    let mut s = seed;
    let mut out = Vec::with_capacity(events);
    if names.is_empty() {
        return out;
    }
    for _ in 0..events {
        let name = names[(splitmix64(&mut s) % names.len() as u64) as usize];
        let nth = 1 + splitmix64(&mut s) % max_nth.max(1);
        let times = 1 + splitmix64(&mut s) % 2;
        let action = match splitmix64(&mut s) % 4 {
            0 => FaultAction::Delay(Duration::from_millis(
                splitmix64(&mut s) % max_delay_ms.max(1),
            )),
            1 | 2 => FaultAction::Error(format!("chaos error at {name} (seed {seed})")),
            _ => FaultAction::Panic(format!("chaos panic at {name} (seed {seed})")),
        };
        out.push(ScheduleEntry {
            name: name.to_string(),
            spec: FaultSpec { action, nth, times },
        });
    }
    out
}

#[cfg(feature = "enabled")]
mod registry {
    use super::{FaultAction, FaultSpec, ScheduleEntry};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    #[derive(Default)]
    struct FpState {
        hits: u64,
        specs: Vec<FaultSpec>,
    }

    fn reg() -> &'static Mutex<HashMap<String, FpState>> {
        static REG: OnceLock<Mutex<HashMap<String, FpState>>> = OnceLock::new();
        REG.get_or_init(Mutex::default)
    }

    // The registry mutex is never held across user code or a panic, but a
    // *test* thread that panicked between lock() calls may still have
    // poisoned it via an unrelated assert; recover the data either way.
    fn lock() -> std::sync::MutexGuard<'static, HashMap<String, FpState>> {
        reg().lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn arm(name: &str, spec: FaultSpec) -> bool {
        lock().entry(name.to_string()).or_default().specs.push(spec);
        true
    }

    pub fn arm_schedule(entries: &[ScheduleEntry]) -> usize {
        for e in entries {
            arm(&e.name, e.spec.clone());
        }
        entries.len()
    }

    pub fn disarm(name: &str) {
        if let Some(st) = lock().get_mut(name) {
            st.specs.clear();
        }
    }

    pub fn reset() {
        lock().clear();
    }

    pub fn hits(name: &str) -> u64 {
        lock().get(name).map_or(0, |s| s.hits)
    }

    pub fn eval(name: &str) -> Option<String> {
        // Decide the action under the lock, act after dropping it: a
        // firing Panic or Delay must never hold (or poison) the registry.
        let (action, hit) = {
            let mut g = lock();
            let st = g.entry(name.to_string()).or_default();
            st.hits += 1;
            let hit = st.hits;
            let action = st
                .specs
                .iter()
                .find(|s| s.fires_on(hit))
                .map(|s| s.action.clone());
            (action, hit)
        };
        let action = action?;
        // Record the armed hit *before* the action runs, so panics and
        // delays show up in traces too. Written straight to the global
        // sink (`instant_for`), not the thread-local buffer: a Panic
        // unwinds past any later flush, and the crash handler may
        // export the job's trace before this thread's TLS destructor
        // runs — the direct write makes the hit deterministically
        // visible to whoever drains next.
        if obs::trace::enabled() {
            let kind = match &action {
                FaultAction::Error(_) => 0u64,
                FaultAction::Panic(_) => 1,
                FaultAction::Delay(_) => 2,
            };
            obs::trace::instant_for(
                obs::trace::current(),
                format!("failpoint:{name}"),
                &[("hit", hit), ("kind", kind)],
            );
        }
        match action {
            FaultAction::Error(msg) => Some(msg),
            FaultAction::Panic(msg) => panic!("{msg}"),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                None
            }
        }
    }
}

#[cfg(feature = "enabled")]
pub use registry::{arm, arm_schedule, disarm, eval, hits, reset};

/// Arm `name` with `spec`. No-op returning `false` in disabled builds.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn arm(_name: &str, _spec: FaultSpec) -> bool {
    false
}

/// Arm every entry of a schedule; returns how many were armed (0 when
/// disabled).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn arm_schedule(_entries: &[ScheduleEntry]) -> usize {
    0
}

/// Clear the rules armed on `name` (hit counters are kept).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn disarm(_name: &str) {}

/// Clear every rule and every hit counter.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn reset() {}

/// Times `name` has been evaluated since the last [`reset`] (0 when
/// disabled).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hits(_name: &str) -> u64 {
    0
}

/// Evaluate the failpoint `name`: count the hit and run any rule armed
/// for it. Returns `Some(message)` for an injected error (the callsite
/// maps it into its own error type), panics for an injected panic, and
/// sleeps then returns `None` for an injected delay. In disabled builds
/// this is an inlined `None` — zero cost at every callsite.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn eval(_name: &str) -> Option<String> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_schedule_grammar() {
        let s =
            parse_schedule("tier1.block=panic@3,queue.pop=delay:5,dwt.level=error@2x4").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].name, "tier1.block");
        assert_eq!(s[0].spec.nth, 3);
        assert!(matches!(s[0].spec.action, FaultAction::Panic(_)));
        assert_eq!(
            s[1].spec.action,
            FaultAction::Delay(Duration::from_millis(5))
        );
        assert_eq!((s[2].spec.nth, s[2].spec.times), (2, 4));
        assert!(parse_schedule("nope").is_err());
        assert!(parse_schedule("a=explode").is_err());
        assert!(parse_schedule("").unwrap().is_empty());
    }

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let names = ["a", "b", "c"];
        let s1 = random_schedule(42, &names, 8, 10, 5);
        let s2 = random_schedule(42, &names, 8, 10, 5);
        let s3 = random_schedule(43, &names, 8, 10, 5);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1.len(), 8);
    }

    #[test]
    fn spec_fire_window() {
        let sp = FaultSpec::at(FaultAction::Error("e".into()), 3, 2);
        assert!(!sp.fires_on(2));
        assert!(sp.fires_on(3));
        assert!(sp.fires_on(4));
        assert!(!sp.fires_on(5));
    }

    // Disabled builds must be inert: this is the assertion the CI release
    // gate runs (`cargo test --release -p faultsim` with no features).
    #[cfg(not(feature = "enabled"))]
    mod disabled {
        use super::super::*;

        #[test]
        #[allow(clippy::assertions_on_constants)]
        fn everything_is_a_noop() {
            assert!(!ENABLED);
            assert!(!arm("x", FaultSpec::once(FaultAction::Error("e".into()))));
            assert_eq!(eval("x"), None);
            assert_eq!(hits("x"), 0);
            assert_eq!(
                arm_schedule(&[ScheduleEntry {
                    name: "x".into(),
                    spec: FaultSpec::once(FaultAction::Error("e".into())),
                }]),
                0
            );
            reset();
        }
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;
        use std::sync::Mutex;

        // The registry is process-global; serialize the tests that use it.
        static LOCK: Mutex<()> = Mutex::new(());

        #[test]
        #[allow(clippy::assertions_on_constants)]
        fn error_fires_at_nth_hit_for_times_hits() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            reset();
            assert!(ENABLED);
            arm(
                "t.err",
                FaultSpec::at(FaultAction::Error("boom".into()), 2, 2),
            );
            assert_eq!(eval("t.err"), None);
            assert_eq!(eval("t.err"), Some("boom".into()));
            assert_eq!(eval("t.err"), Some("boom".into()));
            assert_eq!(eval("t.err"), None);
            assert_eq!(hits("t.err"), 4);
            reset();
            assert_eq!(hits("t.err"), 0);
        }

        #[test]
        fn panic_fires_and_registry_survives() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            reset();
            arm(
                "t.panic",
                FaultSpec::once(FaultAction::Panic("kapow".into())),
            );
            let r = std::panic::catch_unwind(|| eval("t.panic"));
            assert!(r.is_err());
            // Registry not poisoned: further use works.
            assert_eq!(eval("t.panic"), None);
            assert_eq!(hits("t.panic"), 2);
            reset();
        }

        #[test]
        fn disarm_clears_rules_but_not_counts() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            reset();
            arm(
                "t.dis",
                FaultSpec::at(FaultAction::Error("e".into()), 1, u64::MAX),
            );
            assert!(eval("t.dis").is_some());
            disarm("t.dis");
            assert_eq!(eval("t.dis"), None);
            assert_eq!(hits("t.dis"), 2);
            reset();
        }
    }
}
