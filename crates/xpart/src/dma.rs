//! DMA transfer descriptors for chunk rows.
//!
//! Under the decomposition scheme, "the SPE traverses the assigned chunks by
//! processing every single row in the chunk as a unit of data transfer and
//! computation". This module turns a ([`ChunkDesc`], row) pair into the byte
//! ranges the Cell's Memory Flow Controller would move, and classifies how
//! efficient the transfer is under the hardware's alignment rules:
//!
//! * 1/2/4/8-byte transfers need matching natural alignment;
//! * multi-quad-word transfers need 16-byte alignment and a size that is a
//!   multiple of 16;
//! * peak efficiency requires 128-byte (cache line) alignment on both ends
//!   and a size that is an even multiple of the line.
//!
//! `cellsim::dma` consumes these descriptors and prices them.

use crate::plan::ChunkDesc;
use crate::{CACHE_LINE, QUAD_WORD};

/// Transfer direction, from the SPE's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDir {
    /// Main memory -> Local Store.
    Get,
    /// Local Store -> main memory.
    Put,
}

/// Alignment/size class of one transfer, in decreasing efficiency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DmaClass {
    /// Line-aligned on both ends, size an even multiple of the line:
    /// the most efficient case the paper's scheme guarantees.
    LineOptimal,
    /// Quad-word aligned, size a multiple of 16 bytes: legal and fast but
    /// wastes part of the line-interleaved memory banks.
    QuadAligned,
    /// A small naturally-aligned transfer of 1, 2, 4, or 8 bytes.
    SmallNatural,
    /// Violates the MFC rules; real hardware raises a bus error. The
    /// simulator treats this as a hard failure.
    Illegal,
}

/// One DMA transfer of a single chunk row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowTransfer {
    /// Direction.
    pub dir: DmaDir,
    /// Byte offset of the first byte in the (padded) main-memory plane.
    pub main_offset: usize,
    /// Byte offset in the Local Store buffer.
    pub ls_offset: usize,
    /// Transfer size in bytes.
    pub bytes: usize,
}

impl RowTransfer {
    /// Classify the transfer under the MFC alignment rules.
    pub fn class(&self) -> DmaClass {
        let a = self.main_offset | self.ls_offset;
        if self.bytes == 0 {
            return DmaClass::Illegal;
        }
        if a.is_multiple_of(CACHE_LINE) && self.bytes.is_multiple_of(CACHE_LINE) {
            return DmaClass::LineOptimal;
        }
        if a.is_multiple_of(QUAD_WORD) && self.bytes.is_multiple_of(QUAD_WORD) {
            return DmaClass::QuadAligned;
        }
        match self.bytes {
            1 | 2 | 4 | 8 if a.is_multiple_of(self.bytes) => DmaClass::SmallNatural,
            _ => DmaClass::Illegal,
        }
    }

    /// Number of cache lines this transfer touches in main memory.
    pub fn lines_touched(&self) -> usize {
        if self.bytes == 0 {
            return 0;
        }
        let first = self.main_offset / CACHE_LINE;
        let last = (self.main_offset + self.bytes - 1) / CACHE_LINE;
        last - first + 1
    }
}

/// Build the GET (or PUT) descriptor for row `y` of chunk `c` inside a plane
/// with row pitch `stride_bytes` and element size `elem_size`.
///
/// Under the decomposition scheme the resulting transfer is always
/// [`DmaClass::LineOptimal`] for non-remainder chunks when the transfer
/// covers the chunk's full padded width; the tests assert this.
pub fn chunk_row_transfer(
    c: &ChunkDesc,
    y: usize,
    stride_bytes: usize,
    elem_size: usize,
    dir: DmaDir,
) -> RowTransfer {
    let main_offset = y * stride_bytes + c.x0 * elem_size;
    let mut bytes = c.width * elem_size;
    if c.is_remainder {
        // The PPE accesses the remainder directly through its cache; when we
        // still describe it as a transfer (e.g. for accounting) round it up
        // to the padded end of the row, which is line-aligned by
        // construction.
        let row_end = (y + 1) * stride_bytes;
        bytes = row_end - main_offset;
    }
    RowTransfer {
        dir,
        main_offset,
        ls_offset: 0,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChunkPlan, Owner, PlanConfig};

    fn plan(width: usize) -> ChunkPlan {
        ChunkPlan::build(
            width,
            16,
            &PlanConfig {
                num_spes: 4,
                elem_size: 4,
                ..PlanConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn spe_chunk_rows_are_line_optimal() {
        let p = plan(1000);
        // stride for 1000 i32 = 4000 bytes -> padded to 4096.
        let stride = crate::round_up(1000 * 4, CACHE_LINE);
        for c in p.chunks().iter().filter(|c| !c.is_remainder) {
            for y in [0usize, 7, 15] {
                let t = chunk_row_transfer(c, y, stride, 4, DmaDir::Get);
                assert_eq!(t.class(), DmaClass::LineOptimal, "chunk {} row {y}", c.id);
            }
        }
    }

    #[test]
    fn remainder_padded_to_row_end_is_line_optimal_sized() {
        let p = plan(1000);
        let stride = crate::round_up(1000 * 4, CACHE_LINE);
        let r = p.remainder().unwrap();
        assert_eq!(r.owner, Owner::Ppe);
        let t = chunk_row_transfer(r, 3, stride, 4, DmaDir::Put);
        assert_eq!(t.bytes % CACHE_LINE, 0);
        assert_eq!(t.main_offset % CACHE_LINE, 0);
        assert_eq!(t.class(), DmaClass::LineOptimal);
    }

    #[test]
    fn classification_rules() {
        let mk = |off: usize, bytes: usize| RowTransfer {
            dir: DmaDir::Get,
            main_offset: off,
            ls_offset: 0,
            bytes,
        };
        assert_eq!(mk(0, 256).class(), DmaClass::LineOptimal);
        assert_eq!(mk(128, 128).class(), DmaClass::LineOptimal);
        assert_eq!(mk(16, 128).class(), DmaClass::QuadAligned);
        assert_eq!(mk(0, 48).class(), DmaClass::QuadAligned);
        assert_eq!(mk(4, 4).class(), DmaClass::SmallNatural);
        assert_eq!(mk(8, 8).class(), DmaClass::SmallNatural);
        assert_eq!(mk(2, 4).class(), DmaClass::Illegal);
        assert_eq!(mk(0, 3).class(), DmaClass::Illegal);
        assert_eq!(mk(0, 0).class(), DmaClass::Illegal);
    }

    #[test]
    fn lines_touched_counts_straddles() {
        let t = RowTransfer {
            dir: DmaDir::Get,
            main_offset: 100,
            ls_offset: 0,
            bytes: 56,
        };
        // Bytes 100..156 straddle lines 0 and 1.
        assert_eq!(t.lines_touched(), 2);
        let t2 = RowTransfer {
            dir: DmaDir::Get,
            main_offset: 0,
            ls_offset: 0,
            bytes: 128,
        };
        assert_eq!(t2.lines_touched(), 1);
        // Muta-style unaligned 112-pixel (448-byte) tile row starting mid-line
        // touches one more line than the aligned equivalent.
        let muta = RowTransfer {
            dir: DmaDir::Get,
            main_offset: 64,
            ls_offset: 0,
            bytes: 448,
        };
        assert_eq!(muta.lines_touched(), 4);
        let ours = RowTransfer {
            dir: DmaDir::Get,
            main_offset: 0,
            ls_offset: 0,
            bytes: 448,
        };
        assert_eq!(ours.lines_touched(), 4); // same size...
        let ours_padded = RowTransfer {
            dir: DmaDir::Get,
            main_offset: 0,
            ls_offset: 0,
            bytes: 512,
        };
        assert_eq!(ours_padded.lines_touched(), 4); // ...but padded stays 4 lines.
    }
}
