//! Cache-line-aligned data decomposition for 2-D arrays.
//!
//! This crate implements the data decomposition scheme of Section 2 of
//! Kang & Bader, *Optimizing JPEG2000 Still Image Encoding on the Cell
//! Broadband Engine* (ICPP 2008). The scheme targets the Cell/B.E.'s DMA
//! alignment and size requirements and is equally useful for SIMD load/store
//! alignment on modern hosts:
//!
//! 1. Every row of a 2-D array is padded so that its start address is
//!    cache-line aligned ([`AlignedPlane`]).
//! 2. The array is partitioned into column *chunks*. Every chunk except the
//!    last has a width that is a multiple of the cache line size; all chunks
//!    span the full array height ([`ChunkPlan`]).
//! 3. Constant-width chunks are distributed to the SPEs; the arbitrary-width
//!    remainder chunk is processed by the PPE ([`Owner`]).
//! 4. A single row of a chunk is the unit of data transfer and computation,
//!    so the Local Store footprint is constant and independent of the array
//!    size ([`ls_row_footprint`]).
//!
//! The consequences the paper claims — always-aligned DMA, transfer sizes
//! that are even multiples of the cache line, no cache line shared between
//! processing elements, constant loop trip counts — are encoded here as
//! checked invariants (see [`ChunkPlan::validate`] and the property tests).

pub mod dma;
pub mod plan;
pub mod plane;

pub use dma::{DmaDir, RowTransfer};
pub use plan::{ChunkDesc, ChunkPlan, Owner, PlanConfig};
pub use plane::AlignedPlane;

/// Cache line size of the Cell/B.E. PPE and the unit of efficient DMA,
/// in bytes. DMA transfers that are cache-line aligned on both ends and a
/// multiple of this size use the Element Interconnect Bus most efficiently
/// (Kistler, Perrone & Petrini, IEEE Micro 2006).
pub const CACHE_LINE: usize = 128;

/// Quad-word size in bytes: the SPE SIMD load/store alignment requirement.
pub const QUAD_WORD: usize = 16;

/// Errors produced by decomposition planning and plane construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XpartError {
    /// A dimension was zero where a non-zero extent is required.
    EmptyExtent { what: &'static str },
    /// The element size does not divide the cache line size, so rows cannot
    /// be padded to an integral number of elements per line.
    ElemSizeIncompatible { elem_size: usize },
    /// A requested chunk width is not a positive multiple of the cache line.
    ChunkWidthNotLineMultiple { bytes: usize },
    /// The per-row Local Store footprint exceeds the available budget.
    LocalStoreOverflow { needed: usize, budget: usize },
    /// A raw buffer's length does not match `width * height`.
    BufferSizeMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for XpartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XpartError::EmptyExtent { what } => write!(f, "empty extent: {what}"),
            XpartError::ElemSizeIncompatible { elem_size } => write!(
                f,
                "element size {elem_size} does not divide the cache line size {CACHE_LINE}"
            ),
            XpartError::ChunkWidthNotLineMultiple { bytes } => write!(
                f,
                "chunk width of {bytes} bytes is not a positive multiple of the cache line ({CACHE_LINE})"
            ),
            XpartError::LocalStoreOverflow { needed, budget } => write!(
                f,
                "Local Store overflow: row buffers need {needed} bytes, budget is {budget}"
            ),
            XpartError::BufferSizeMismatch { expected, got } => {
                write!(f, "buffer size mismatch: expected {expected} elements, got {got}")
            }
        }
    }
}

impl std::error::Error for XpartError {}

/// Round `n` up to the next multiple of `to` (`to` must be non-zero).
#[inline]
pub fn round_up(n: usize, to: usize) -> usize {
    debug_assert!(to != 0);
    n.div_ceil(to) * to
}

/// Local Store bytes needed to process one row of a chunk of
/// `chunk_width_bytes` with `buffering` levels of multi-buffering
/// (1 = single buffer, 2 = double buffering, ...).
///
/// Because the chunk width is constant, this footprint is constant and
/// independent of the image size — the property that lets the paper raise the
/// buffering level "to a higher value that fits within the Local Store".
#[inline]
pub fn ls_row_footprint(chunk_width_bytes: usize, buffering: usize) -> usize {
    chunk_width_bytes * buffering.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_basics() {
        assert_eq!(round_up(0, 128), 0);
        assert_eq!(round_up(1, 128), 128);
        assert_eq!(round_up(128, 128), 128);
        assert_eq!(round_up(129, 128), 256);
        assert_eq!(round_up(300, 16), 304);
    }

    #[test]
    fn ls_footprint_scales_with_buffering() {
        assert_eq!(ls_row_footprint(1024, 1), 1024);
        assert_eq!(ls_row_footprint(1024, 2), 2048);
        assert_eq!(ls_row_footprint(1024, 0), 1024); // clamped to single buffer
    }

    #[test]
    fn error_display_is_informative() {
        let e = XpartError::LocalStoreOverflow {
            needed: 300_000,
            budget: 262_144,
        };
        let s = e.to_string();
        assert!(s.contains("300000") && s.contains("262144"));
    }
}
