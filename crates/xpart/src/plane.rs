//! Row-padded 2-D storage ([`AlignedPlane`]).
//!
//! "First, we pad every row to force the start address of every row to be
//! cache line aligned." — Kang & Bader, Section 2. We realize this by padding
//! the row *stride* to a multiple of [`CACHE_LINE`] bytes; the backing vector
//! is over-allocated so that element 0 of every row begins at a stride
//! boundary. (Heap base alignment on the host is handled by the allocator;
//! all offsets within the buffer are line-aligned, which is what the DMA
//! model checks.)

use crate::{round_up, XpartError, CACHE_LINE};

/// A 2-D plane of `T` whose rows are padded to a cache-line multiple.
///
/// `width` is the logical width in elements; `stride` (≥ width) is the
/// allocated row pitch in elements and satisfies
/// `stride * size_of::<T>() % CACHE_LINE == 0`.
///
/// Samples are stored row-major. Padding elements exist at the end of each
/// row; their contents are unspecified but initialized (zeroed) so the plane
/// can be hashed/compared safely after [`AlignedPlane::zero_padding`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedPlane<T> {
    width: usize,
    height: usize,
    stride: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> AlignedPlane<T> {
    /// Create a zero-initialized plane of `width x height` logical elements.
    pub fn new(width: usize, height: usize) -> Result<Self, XpartError> {
        if width == 0 {
            return Err(XpartError::EmptyExtent { what: "width" });
        }
        if height == 0 {
            return Err(XpartError::EmptyExtent { what: "height" });
        }
        let elem = std::mem::size_of::<T>();
        if elem == 0 || !CACHE_LINE.is_multiple_of(elem) {
            return Err(XpartError::ElemSizeIncompatible { elem_size: elem });
        }
        let stride = round_up(width * elem, CACHE_LINE) / elem;
        let data = vec![T::default(); stride * height];
        Ok(Self {
            width,
            height,
            stride,
            data,
        })
    }

    /// Build a plane from a dense row-major buffer of `width * height`
    /// elements, inserting row padding.
    pub fn from_dense(width: usize, height: usize, dense: &[T]) -> Result<Self, XpartError> {
        if dense.len() != width * height {
            return Err(XpartError::BufferSizeMismatch {
                expected: width * height,
                got: dense.len(),
            });
        }
        let mut p = Self::new(width, height)?;
        for y in 0..height {
            p.row_mut(y)
                .copy_from_slice(&dense[y * width..(y + 1) * width]);
        }
        Ok(p)
    }

    /// Copy the logical contents back out to a dense row-major vector,
    /// dropping the padding.
    pub fn to_dense(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.width * self.height);
        for y in 0..self.height {
            out.extend_from_slice(self.row(y));
        }
        out
    }

    /// Logical width in elements.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Allocated row pitch in elements (a cache-line multiple in bytes).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row pitch in bytes.
    #[inline]
    pub fn stride_bytes(&self) -> usize {
        self.stride * std::mem::size_of::<T>()
    }

    /// Logical row `y` (without padding).
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        let s = y * self.stride;
        &self.data[s..s + self.width]
    }

    /// Mutable logical row `y` (without padding).
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        let s = y * self.stride;
        &mut self.data[s..s + self.width]
    }

    /// Full padded row `y` (including padding elements).
    #[inline]
    pub fn padded_row(&self, y: usize) -> &[T] {
        let s = y * self.stride;
        &self.data[s..s + self.stride]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x] = v;
    }

    /// The entire padded backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The entire padded backing buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Byte offset of `(x, y)` from the start of the buffer. Used by the DMA
    /// descriptor builder.
    #[inline]
    pub fn byte_offset(&self, x: usize, y: usize) -> usize {
        (y * self.stride + x) * std::mem::size_of::<T>()
    }

    /// Reset every padding element to `T::default()` so whole-buffer
    /// comparisons are deterministic.
    pub fn zero_padding(&mut self) {
        for y in 0..self.height {
            let s = y * self.stride;
            for v in &mut self.data[s + self.width..s + self.stride] {
                *v = T::default();
            }
        }
    }

    /// Apply `f` to every logical element, row by row.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(usize, usize, &mut T)) {
        for y in 0..self.height {
            let s = y * self.stride;
            for (x, v) in self.data[s..s + self.width].iter_mut().enumerate() {
                f(x, y, v);
            }
        }
    }

    /// Map into a new plane of a different element type with the same
    /// geometry.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> AlignedPlane<U> {
        let mut out =
            AlignedPlane::<U>::new(self.width, self.height).expect("geometry already validated");
        for y in 0..self.height {
            let src = self.row(y);
            let dst = out.row_mut(y);
            for (d, s) in dst.iter_mut().zip(src) {
                *d = f(*s);
            }
        }
        out
    }
}

impl AlignedPlane<i32> {
    /// Convert to `f32` samples (used when switching the 9/7 path from
    /// fixed-point to floating point, Section 4).
    pub fn to_f32(&self) -> AlignedPlane<f32> {
        self.map(|v| v as f32)
    }
}

impl AlignedPlane<f32> {
    /// Round-convert to `i32` samples.
    pub fn to_i32_rounded(&self) -> AlignedPlane<i32> {
        self.map(|v| v.round() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_is_line_multiple() {
        for w in [1usize, 31, 32, 33, 100, 1000, 3072] {
            let p = AlignedPlane::<i32>::new(w, 3).unwrap();
            assert_eq!(p.stride_bytes() % CACHE_LINE, 0, "width {w}");
            assert!(p.stride() >= w);
            // Stride never wastes a full extra line.
            assert!(p.stride_bytes() - w * 4 < CACHE_LINE);
        }
    }

    #[test]
    fn dense_round_trip() {
        let dense: Vec<i32> = (0..5 * 7).collect();
        let p = AlignedPlane::from_dense(7, 5, &dense).unwrap();
        assert_eq!(p.to_dense(), dense);
        assert_eq!(p.get(6, 4), 34);
    }

    #[test]
    fn row_offsets_are_line_aligned() {
        let p = AlignedPlane::<i32>::new(33, 9).unwrap();
        for y in 0..9 {
            assert_eq!(p.byte_offset(0, y) % CACHE_LINE, 0);
        }
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            AlignedPlane::<i32>::new(0, 3),
            Err(XpartError::EmptyExtent { what: "width" })
        ));
        assert!(matches!(
            AlignedPlane::<i32>::new(3, 0),
            Err(XpartError::EmptyExtent { what: "height" })
        ));
    }

    #[test]
    fn rejects_bad_buffer_size() {
        let dense = vec![0i32; 10];
        assert!(matches!(
            AlignedPlane::from_dense(3, 4, &dense),
            Err(XpartError::BufferSizeMismatch {
                expected: 12,
                got: 10
            })
        ));
    }

    #[test]
    fn map_preserves_geometry() {
        let p = AlignedPlane::from_dense(3, 2, &[1i32, 2, 3, 4, 5, 6]).unwrap();
        let q = p.map(|v| v * 2);
        assert_eq!(q.to_dense(), vec![2, 4, 6, 8, 10, 12]);
        assert_eq!(q.stride(), p.stride());
    }

    #[test]
    fn f32_conversions() {
        let p = AlignedPlane::from_dense(2, 1, &[-3i32, 4]).unwrap();
        let f = p.to_f32();
        assert_eq!(f.to_dense(), vec![-3.0, 4.0]);
        assert_eq!(f.to_i32_rounded().to_dense(), vec![-3, 4]);
    }

    #[test]
    fn for_each_mut_visits_all_logical_elements() {
        let mut p = AlignedPlane::<i32>::new(5, 4).unwrap();
        let mut n = 0;
        p.for_each_mut(|x, y, v| {
            *v = (x + 10 * y) as i32;
            n += 1;
        });
        assert_eq!(n, 20);
        assert_eq!(p.get(4, 3), 34);
    }

    #[test]
    fn zero_padding_clears_pad_elements() {
        let mut p = AlignedPlane::<i32>::new(5, 2).unwrap();
        // Scribble into the padding via the raw slice.
        let stride = p.stride();
        p.as_mut_slice()[stride - 1] = 99;
        p.zero_padding();
        assert_eq!(p.as_slice()[stride - 1], 0);
    }
}
