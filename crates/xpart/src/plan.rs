//! Chunk partitioning ([`ChunkPlan`]) — Figure 1 of the paper.
//!
//! The padded array is split into column chunks. Every chunk except the last
//! has a width that is a multiple of the cache line; those constant-width
//! chunks are dealt out to the SPEs round-robin. The remainder chunk (if the
//! logical width is not itself a line multiple) goes to the PPE, "to enhance
//! the overall chip utilization".

use crate::{ls_row_footprint, XpartError, CACHE_LINE};

/// Which processing element owns a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// One of the synergistic processing elements, by index.
    Spe(usize),
    /// The PowerPC element (handles the arbitrary-width remainder chunk).
    Ppe,
}

/// One column chunk of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkDesc {
    /// Dense chunk index, in left-to-right order.
    pub id: usize,
    /// Owning processing element.
    pub owner: Owner,
    /// First column (element index) covered by this chunk.
    pub x0: usize,
    /// Width in elements. For every chunk but possibly the last this is
    /// `width_bytes / elem_size` with `width_bytes` a cache-line multiple.
    pub width: usize,
    /// Height in rows (always the full array height).
    pub height: usize,
    /// True for the final, arbitrary-width remainder chunk.
    pub is_remainder: bool,
}

impl ChunkDesc {
    /// Stable human-readable label (`chunk-3`) used for trace events
    /// and diagnostics; dense ids make labels line up with the plan's
    /// left-to-right chunk order.
    pub fn label(&self) -> String {
        format!("chunk-{}", self.id)
    }

    /// Number of elements covered.
    #[inline]
    pub fn elems(&self) -> usize {
        self.width * self.height
    }
}

/// Configuration for building a [`ChunkPlan`].
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Number of SPEs that will receive constant-width chunks.
    pub num_spes: usize,
    /// Element size in bytes (4 for `i32`/`f32` samples).
    pub elem_size: usize,
    /// Desired constant chunk width in *bytes*; must be a positive multiple
    /// of [`CACHE_LINE`]. The paper tunes this (column-grouping width) so one
    /// row of a chunk plus buffering fits the Local Store.
    pub chunk_width_bytes: usize,
    /// Multi-buffering level used to size the Local Store check (1 = single).
    pub buffering: usize,
    /// Local Store budget in bytes available for row buffers (the full Local
    /// Store is 256 KiB minus code and stack; callers pass the data budget).
    pub ls_budget: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            num_spes: 8,
            elem_size: 4,
            chunk_width_bytes: 4 * CACHE_LINE,
            buffering: 2,
            ls_budget: 192 * 1024,
        }
    }
}

/// A complete decomposition of a `width x height` array.
#[derive(Debug, Clone)]
pub struct ChunkPlan {
    width: usize,
    height: usize,
    elem_size: usize,
    chunks: Vec<ChunkDesc>,
}

impl ChunkPlan {
    /// Partition an array of `width x height` elements according to `cfg`.
    ///
    /// When `cfg.num_spes == 0` the whole array becomes a single PPE chunk
    /// (the "1 PPE only" configuration of Figures 4/5).
    pub fn build(width: usize, height: usize, cfg: &PlanConfig) -> Result<Self, XpartError> {
        if width == 0 {
            return Err(XpartError::EmptyExtent { what: "width" });
        }
        if height == 0 {
            return Err(XpartError::EmptyExtent { what: "height" });
        }
        if cfg.elem_size == 0 || !CACHE_LINE.is_multiple_of(cfg.elem_size) {
            return Err(XpartError::ElemSizeIncompatible {
                elem_size: cfg.elem_size,
            });
        }
        if cfg.chunk_width_bytes == 0 || !cfg.chunk_width_bytes.is_multiple_of(CACHE_LINE) {
            return Err(XpartError::ChunkWidthNotLineMultiple {
                bytes: cfg.chunk_width_bytes,
            });
        }
        let needed = ls_row_footprint(cfg.chunk_width_bytes, cfg.buffering);
        if needed > cfg.ls_budget {
            return Err(XpartError::LocalStoreOverflow {
                needed,
                budget: cfg.ls_budget,
            });
        }

        let chunk_w = cfg.chunk_width_bytes / cfg.elem_size;
        let mut chunks = Vec::new();
        if cfg.num_spes == 0 {
            chunks.push(ChunkDesc {
                id: 0,
                owner: Owner::Ppe,
                x0: 0,
                width,
                height,
                is_remainder: true,
            });
            return Ok(Self {
                width,
                height,
                elem_size: cfg.elem_size,
                chunks,
            });
        }

        let full = width / chunk_w;
        let rem = width - full * chunk_w;
        for i in 0..full {
            chunks.push(ChunkDesc {
                id: i,
                owner: Owner::Spe(i % cfg.num_spes),
                x0: i * chunk_w,
                width: chunk_w,
                height,
                is_remainder: false,
            });
        }
        if rem > 0 {
            chunks.push(ChunkDesc {
                id: full,
                owner: Owner::Ppe,
                x0: full * chunk_w,
                width: rem,
                height,
                is_remainder: true,
            });
        }
        // Degenerate case: the array is narrower than one chunk — everything
        // is remainder and lands on the PPE, matching the paper's rule.
        Ok(Self {
            width,
            height,
            elem_size: cfg.elem_size,
            chunks,
        })
    }

    /// Logical array width in elements.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Array height in rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// All chunks, left to right.
    #[inline]
    pub fn chunks(&self) -> &[ChunkDesc] {
        &self.chunks
    }

    /// Chunks owned by a given processing element.
    pub fn chunks_for(&self, owner: Owner) -> impl Iterator<Item = &ChunkDesc> {
        self.chunks.iter().filter(move |c| c.owner == owner)
    }

    /// The remainder chunk, if any.
    pub fn remainder(&self) -> Option<&ChunkDesc> {
        self.chunks.last().filter(|c| c.is_remainder)
    }

    /// Total elements covered by all chunks (must equal `width * height`).
    pub fn covered_elems(&self) -> usize {
        self.chunks.iter().map(ChunkDesc::elems).sum()
    }

    /// Check the scheme's invariants; used by tests and by `cellsim` before
    /// admitting a plan.
    ///
    /// Invariants (paper, Section 2):
    /// * chunks tile `[0, width)` exactly, in order, without overlap;
    /// * every non-remainder chunk starts at a cache-line-aligned byte
    ///   offset and has a byte width that is a cache-line multiple;
    /// * at most one remainder chunk exists, it is last, and it is owned by
    ///   the PPE;
    /// * every chunk spans the full height.
    pub fn validate(&self) -> Result<(), String> {
        let mut x = 0usize;
        for (i, c) in self.chunks.iter().enumerate() {
            if c.id != i {
                return Err(format!("chunk {i} has id {}", c.id));
            }
            if c.x0 != x {
                return Err(format!("chunk {i} starts at {} expected {x}", c.x0));
            }
            if c.height != self.height {
                return Err(format!("chunk {i} height {} != {}", c.height, self.height));
            }
            if c.width == 0 {
                return Err(format!("chunk {i} empty"));
            }
            if !c.is_remainder {
                if !(c.x0 * self.elem_size).is_multiple_of(CACHE_LINE) {
                    return Err(format!("chunk {i} start not line aligned"));
                }
                if !(c.width * self.elem_size).is_multiple_of(CACHE_LINE) {
                    return Err(format!("chunk {i} width not a line multiple"));
                }
            } else {
                if i != self.chunks.len() - 1 {
                    return Err(format!("remainder chunk {i} not last"));
                }
                if c.owner != Owner::Ppe {
                    return Err("remainder chunk not owned by PPE".into());
                }
            }
            x += c.width;
        }
        if x != self.width {
            return Err(format!("chunks cover {x} of {} columns", self.width));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(spes: usize, lines: usize) -> PlanConfig {
        PlanConfig {
            num_spes: spes,
            elem_size: 4,
            chunk_width_bytes: lines * CACHE_LINE,
            buffering: 2,
            ls_budget: 192 * 1024,
        }
    }

    #[test]
    fn exact_tiling_no_remainder() {
        // 256 i32 columns = 1024 bytes = 8 lines; chunk width 2 lines = 64 elems.
        let p = ChunkPlan::build(256, 10, &cfg(4, 2)).unwrap();
        p.validate().unwrap();
        assert_eq!(p.chunks().len(), 4);
        assert!(p.remainder().is_none());
        assert_eq!(p.covered_elems(), 256 * 10);
    }

    #[test]
    fn remainder_goes_to_ppe() {
        let p = ChunkPlan::build(300, 10, &cfg(4, 2)).unwrap();
        p.validate().unwrap();
        let r = p.remainder().expect("remainder");
        assert_eq!(r.owner, Owner::Ppe);
        assert_eq!(r.width, 300 - 4 * 64);
        assert_eq!(p.covered_elems(), 300 * 10);
    }

    #[test]
    fn round_robin_spe_assignment() {
        let p = ChunkPlan::build(64 * 5, 4, &cfg(2, 2)).unwrap();
        let owners: Vec<_> = p.chunks().iter().map(|c| c.owner).collect();
        assert_eq!(
            owners,
            vec![
                Owner::Spe(0),
                Owner::Spe(1),
                Owner::Spe(0),
                Owner::Spe(1),
                Owner::Spe(0)
            ]
        );
    }

    #[test]
    fn zero_spes_single_ppe_chunk() {
        let p = ChunkPlan::build(300, 10, &cfg(0, 2)).unwrap();
        p.validate().unwrap();
        assert_eq!(p.chunks().len(), 1);
        assert_eq!(p.chunks()[0].owner, Owner::Ppe);
    }

    #[test]
    fn narrow_array_all_remainder() {
        let p = ChunkPlan::build(10, 10, &cfg(4, 2)).unwrap();
        p.validate().unwrap();
        assert_eq!(p.chunks().len(), 1);
        assert!(p.chunks()[0].is_remainder);
    }

    #[test]
    fn rejects_non_line_chunk_width() {
        let mut c = cfg(4, 2);
        c.chunk_width_bytes = 100;
        assert!(matches!(
            ChunkPlan::build(256, 10, &c),
            Err(XpartError::ChunkWidthNotLineMultiple { bytes: 100 })
        ));
    }

    #[test]
    fn rejects_ls_overflow() {
        let mut c = cfg(4, 512); // 64 KiB per row buffer
        c.buffering = 4;
        c.ls_budget = 128 * 1024;
        assert!(matches!(
            ChunkPlan::build(1 << 20, 10, &c),
            Err(XpartError::LocalStoreOverflow { .. })
        ));
    }

    #[test]
    fn chunks_for_filters_by_owner() {
        let p = ChunkPlan::build(64 * 4 + 3, 2, &cfg(2, 2)).unwrap();
        assert_eq!(p.chunks_for(Owner::Spe(0)).count(), 2);
        assert_eq!(p.chunks_for(Owner::Spe(1)).count(), 2);
        assert_eq!(p.chunks_for(Owner::Ppe).count(), 1);
    }

    #[test]
    fn narrower_than_one_chunk_every_spe_idle() {
        // Chunk width 64 elems but the array is 63 wide: no SPE receives
        // work, the single remainder chunk carries every column.
        let p = ChunkPlan::build(63, 5, &cfg(8, 2)).unwrap();
        p.validate().unwrap();
        assert_eq!(p.chunks().len(), 1);
        let r = p.remainder().expect("remainder");
        assert!(r.is_remainder && r.owner == Owner::Ppe);
        assert_eq!((r.x0, r.width, r.height), (0, 63, 5));
        assert_eq!(r.elems(), 63 * 5);
        for s in 0..8 {
            assert_eq!(p.chunks_for(Owner::Spe(s)).count(), 0, "SPE {s} has work");
        }
        assert_eq!(p.covered_elems(), 63 * 5);
    }

    #[test]
    fn exact_multiple_width_has_empty_remainder() {
        // 192 elems = exactly 3 chunks of 64: the remainder is absent, not
        // zero-width, and the PPE owns nothing.
        let p = ChunkPlan::build(192, 7, &cfg(3, 2)).unwrap();
        p.validate().unwrap();
        assert!(p.remainder().is_none());
        assert_eq!(p.chunks_for(Owner::Ppe).count(), 0);
        assert!(p.chunks().iter().all(|c| !c.is_remainder && c.width == 64));
        let total: usize = p.chunks().iter().map(ChunkDesc::elems).sum();
        assert_eq!(total, 192 * 7);
    }

    #[test]
    fn one_pixel_wide_component() {
        // A 1-pixel-wide plane (deep DWT levels shrink to this): the whole
        // column is one remainder chunk and the plan still validates.
        let p = ChunkPlan::build(1, 17, &cfg(4, 1)).unwrap();
        p.validate().unwrap();
        assert_eq!(p.chunks().len(), 1);
        let c = &p.chunks()[0];
        assert!(c.is_remainder && c.owner == Owner::Ppe);
        assert_eq!((c.x0, c.width, c.height), (0, 1, 17));
        assert_eq!(p.covered_elems(), 17);
    }

    #[test]
    fn one_pixel_wide_zero_spes() {
        // Degenerate on both axes: 1-wide array and no SPEs at all.
        let p = ChunkPlan::build(1, 1, &cfg(0, 1)).unwrap();
        p.validate().unwrap();
        assert_eq!(p.chunks().len(), 1);
        assert_eq!(p.chunks()[0].owner, Owner::Ppe);
        assert_eq!(p.covered_elems(), 1);
    }
}
