//! Property tests for the data decomposition scheme's invariants
//! (paper Section 2): exact tiling, alignment, Local Store bounds.

use proptest::prelude::*;
use xpart::{
    dma::{chunk_row_transfer, DmaClass, DmaDir},
    round_up, AlignedPlane, ChunkPlan, Owner, PlanConfig, CACHE_LINE,
};

fn config_strategy() -> impl Strategy<Value = PlanConfig> {
    (0usize..17, 1usize..65, 1usize..4).prop_map(|(spes, lines, buffering)| PlanConfig {
        num_spes: spes,
        elem_size: 4,
        chunk_width_bytes: lines * CACHE_LINE,
        buffering,
        ls_budget: 192 * 1024,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chunks_tile_exactly_and_validate(
        w in 1usize..10_000,
        h in 1usize..64,
        cfg in config_strategy(),
    ) {
        prop_assume!(xpart::ls_row_footprint(cfg.chunk_width_bytes, cfg.buffering) <= cfg.ls_budget);
        let plan = ChunkPlan::build(w, h, &cfg).unwrap();
        plan.validate().unwrap();
        prop_assert_eq!(plan.covered_elems(), w * h);
        // At most one remainder, owned by the PPE.
        let rem: Vec<_> = plan.chunks().iter().filter(|c| c.is_remainder).collect();
        prop_assert!(rem.len() <= 1);
        for r in rem {
            prop_assert_eq!(r.owner, Owner::Ppe);
        }
        // Non-remainder chunks all have the configured width.
        for c in plan.chunks().iter().filter(|c| !c.is_remainder) {
            prop_assert_eq!(c.width * cfg.elem_size, cfg.chunk_width_bytes);
        }
    }

    #[test]
    fn spe_round_robin_is_balanced(
        w in 256usize..20_000,
        spes in 1usize..17,
    ) {
        let cfg = PlanConfig { num_spes: spes, ..PlanConfig::default() };
        let plan = ChunkPlan::build(w, 8, &cfg).unwrap();
        let mut counts = vec![0usize; spes];
        for c in plan.chunks() {
            if let Owner::Spe(i) = c.owner {
                counts[i] += 1;
            }
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn spe_chunk_row_dma_is_always_line_optimal(
        w in 64usize..5_000,
        h in 1usize..32,
        y_frac in 0.0f64..1.0,
        cfg in config_strategy(),
    ) {
        prop_assume!(xpart::ls_row_footprint(cfg.chunk_width_bytes, cfg.buffering) <= cfg.ls_budget);
        prop_assume!(cfg.num_spes > 0);
        let plan = ChunkPlan::build(w, h, &cfg).unwrap();
        let stride = round_up(w * 4, CACHE_LINE);
        let y = ((h as f64 * y_frac) as usize).min(h - 1);
        for c in plan.chunks().iter().filter(|c| !c.is_remainder) {
            let t = chunk_row_transfer(c, y, stride, 4, DmaDir::Get);
            prop_assert_eq!(t.class(), DmaClass::LineOptimal, "chunk {}", c.id);
            // Every transfer is an even multiple of the line size.
            prop_assert_eq!(t.bytes % CACHE_LINE, 0);
        }
    }

    #[test]
    fn no_cache_line_shared_between_owners(
        w in 64usize..3_000,
        cfg in config_strategy(),
    ) {
        prop_assume!(xpart::ls_row_footprint(cfg.chunk_width_bytes, cfg.buffering) <= cfg.ls_budget);
        // Within one row, the byte ranges of different chunks must not
        // touch the same cache line (the paper's "no cache conflict"
        // property). Row padding covers the remainder chunk's tail.
        let plan = ChunkPlan::build(w, 4, &cfg).unwrap();
        let stride = round_up(w * 4, CACHE_LINE);
        let mut line_owner: std::collections::HashMap<usize, usize> = Default::default();
        for c in plan.chunks() {
            let t = chunk_row_transfer(c, 0, stride, 4, DmaDir::Get);
            let first = t.main_offset / CACHE_LINE;
            let last = (t.main_offset + t.bytes - 1) / CACHE_LINE;
            for line in first..=last {
                if let Some(&prev) = line_owner.get(&line) {
                    prop_assert_eq!(prev, c.id, "line {} shared", line);
                }
                line_owner.insert(line, c.id);
            }
        }
    }

    #[test]
    fn plane_roundtrip_arbitrary(
        w in 1usize..300,
        h in 1usize..40,
        seed in any::<u32>(),
    ) {
        let mut x = seed | 1;
        let dense: Vec<i32> = (0..w * h)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                x as i32
            })
            .collect();
        let p = AlignedPlane::from_dense(w, h, &dense).unwrap();
        prop_assert_eq!(p.to_dense(), dense);
        prop_assert_eq!(p.stride_bytes() % CACHE_LINE, 0);
        for y in 0..h {
            prop_assert_eq!(p.byte_offset(0, y) % CACHE_LINE, 0);
        }
    }
}
