//! Model of Muta et al.'s Motion-JPEG2000 Cell encoder (ACM-MM 2007),
//! reconstructed from the design choices the paper reports:
//!
//! * **Convolution-based DWT** on 128x128 tiles with overlap (net
//!   112x112): ~30% redundant samples per tile and DMA that "does not
//!   satisfy the cache line alignment requirements" (overlapped reads start
//!   mid-line) — modelled as gross/net traffic inflation plus the
//!   [`DmaClass::QuadAligned`] penalty.
//! * **32x32 code blocks** (vs. the standard maximum 64x64): four times as
//!   many blocks, each needing a PPE-mediated queue interaction, which
//!   "increases the interaction among the PPE and SPE threads" and caps
//!   EBCOT scalability.
//! * **PPE does Tier-2 only**, overlapped with SPE Tier-1 (lossless only —
//!   no rate-control stage in their pipeline).
//! * Level shift / component transform / quantization stay on the PPE
//!   "to avoid the offloading overhead".
//! * Pre-production **Cell/B.E. 2.4 GHz** hardware.
//!
//! `Muta0` runs two independent encoder threads, one chip each (throughput
//! doubles, per-frame latency does not); `Muta1` runs one encoder across
//! both chips.

use cellsim::stage::{run_sequential, run_stage, Assignment, TaskSpec};
use cellsim::{DmaClass, Kernel, MachineConfig, ProcKind, Timeline};
use j2k_core::WorkloadProfile;

/// Which published configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutaMode {
    /// Two encoding threads, one Cell chip each (per-frame time reported
    /// from throughput: total / frames).
    Muta0,
    /// One encoding thread across two Cell chips.
    Muta1,
}

/// Tile geometry of their DWT.
pub const TILE_GROSS: u64 = 128;
/// Net tile extent after discarding the overlap.
pub const TILE_NET: u64 = 112;

/// Per-code-block queue-interaction overhead on the PPE (cycles): the
/// handshake that distributes one block and collects its result.
pub const QUEUE_INTERACTION_CYCLES: u64 = 4_000;

/// Relative Tier-1 per-symbol inefficiency of their kernel vs. ours: the
/// 2007 implementation predates the compile-time branch-hint and
/// constant-trip-count optimizations this paper's decomposition enables,
/// and 32x32 blocks reset contexts four times as often.
pub const TIER1_INEFFICIENCY: f64 = 1.6;

/// Fixed per-block SPE-side cost (cycles): MQ init/flush, per-block DMA
/// handshake, state setup — paid 4x as often with 32x32 blocks.
pub const PER_BLOCK_OVERHEAD_CYCLES: u64 = 25_000;

/// The 2.4 GHz blade they used.
pub fn muta_machine(mode: MutaMode) -> MachineConfig {
    let blade = MachineConfig::muta_blade();
    match mode {
        // Each encoder thread sees one chip's resources.
        MutaMode::Muta0 => MachineConfig {
            num_spes: 8,
            num_ppes: 1,
            mem_bw_bytes_per_s: 25.6e9,
            ..blade
        },
        MutaMode::Muta1 => blade,
    }
}

/// Simulate one frame's encode under the Muta design. `profile` should be
/// measured with 32x32 code blocks (`EncoderParams { cb_size: 32, .. }`)
/// to reflect their block geometry.
pub fn simulate_muta(profile: &WorkloadProfile, mode: MutaMode) -> Timeline {
    let cfg = muta_machine(mode);
    let mut tl = Timeline::default();
    let comps = profile.comps as u64;
    let spes = vec![ProcKind::Spe; cfg.num_spes];

    // Sample preparation stays on the PPE.
    let out = run_sequential(&cfg, ProcKind::Ppe, Kernel::TypeConvert, profile.samples);
    tl.push(out.report("read-convert", &cfg));
    let out = run_sequential(&cfg, ProcKind::Ppe, Kernel::LevelShiftIct, profile.samples);
    tl.push(out.report("levelshift-ict", &cfg));

    // Convolution DWT on overlapped tiles. Per the paper, "their DWT
    // implementation does not scale beyond a single SPE despite having
    // high single SPE performance" — so all tile tasks run on one SPE.
    // A tile is transformed separably in the Local Store (row conv +
    // column conv = 2 convolution passes per sample), over the gross
    // (overlap-inflated) extent, with non-line-aligned transfers.
    let inflate = (TILE_GROSS * TILE_GROSS) as f64 / (TILE_NET * TILE_NET) as f64;
    for (li, lv) in profile.levels.iter().enumerate() {
        let tiles_x = lv.w.div_ceil(TILE_NET).max(1);
        let tiles_y = lv.h.div_ceil(TILE_NET).max(1);
        let mut tile_tasks = Vec::new();
        for _ in 0..tiles_x * tiles_y * comps {
            let net = (lv.w * lv.h).div_ceil(tiles_x * tiles_y);
            let gross = (net as f64 * inflate) as u64;
            tile_tasks.push(TaskSpec {
                kernel: Kernel::DwtConv97,
                items: 2 * gross,
                dma_in: gross * 4,
                dma_out: net * 4,
                class: DmaClass::QuadAligned,
            });
        }
        let out = run_stage(&cfg, &spes[..1], &Assignment::Static(vec![tile_tasks]), 2);
        tl.push(out.report(&format!("dwt-tiled-l{}", li + 1), &cfg));
    }

    // EBCOT: SPE Tier-1 queue overlapped with PPE Tier-2 + distribution.
    let per_block_items = (PER_BLOCK_OVERHEAD_CYCLES as f64 / 64.0) as u64; // in symbol-equivalents
    let tasks: Vec<TaskSpec> = profile
        .blocks
        .iter()
        .map(|b| TaskSpec {
            kernel: Kernel::Tier1,
            items: (b.symbols as f64 * TIER1_INEFFICIENCY) as u64 + per_block_items,
            dma_in: b.samples * 4,
            dma_out: b.bytes,
            class: DmaClass::QuadAligned,
        })
        .collect();
    let t1 = run_stage(&cfg, &spes, &Assignment::Queue(tasks), 1);
    let nblocks = profile.blocks.len() as u64;
    let ppe_side = run_sequential(&cfg, ProcKind::Ppe, Kernel::Tier2, nblocks);
    let distribution = nblocks * QUEUE_INTERACTION_CYCLES;
    // Overlapped: the EBCOT stage ends when both sides are done.
    let mut ebcot = t1.report("ebcot", &cfg);
    ebcot.makespan_cycles = ebcot.makespan_cycles.max(ppe_side.makespan + distribution);
    ebcot.seconds = ebcot.makespan_cycles as f64 / cfg.clock_hz;
    tl.push(ebcot);

    let out = run_sequential(&cfg, ProcKind::Ppe, Kernel::StreamIo, profile.output_bytes);
    tl.push(out.report("stream-io", &cfg));
    tl
}

/// Per-frame encode seconds in throughput terms: Muta0 halves it because
/// two frames encode concurrently on the two chips.
pub fn per_frame_seconds(tl: &Timeline, mode: MutaMode) -> f64 {
    match mode {
        MutaMode::Muta0 => tl.total_seconds() / 2.0,
        MutaMode::Muta1 => tl.total_seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use j2k_core::{cell, EncoderParams};

    fn profiles() -> (WorkloadProfile, WorkloadProfile) {
        let im = imgio::synth::natural_rgb(208, 144, 5);
        let ours = j2k_core::encode_with_profile(&im, &EncoderParams::lossless())
            .unwrap()
            .1;
        let muta_params = EncoderParams {
            cb_size: 32,
            ..EncoderParams::lossless()
        };
        let muta = j2k_core::encode_with_profile(&im, &muta_params).unwrap().1;
        (ours, muta)
    }

    #[test]
    fn our_encoder_beats_muta_per_frame() {
        let (ours, muta) = profiles();
        let our_tl = cell::simulate(
            &ours,
            &MachineConfig::qs20_single(),
            &cell::SimOptions::default(),
        );
        let m1 = simulate_muta(&muta, MutaMode::Muta1);
        assert!(
            our_tl.total_seconds() < per_frame_seconds(&m1, MutaMode::Muta1),
            "ours {} vs muta1 {}",
            our_tl.total_seconds(),
            per_frame_seconds(&m1, MutaMode::Muta1)
        );
    }

    #[test]
    fn muta_dwt_is_slower_than_ours() {
        let (ours, muta) = profiles();
        let cfg = MachineConfig::qs20_single();
        let our_tl = cell::simulate(&ours, &cfg, &cell::SimOptions::default());
        let m = simulate_muta(&muta, MutaMode::Muta1);
        let ours_dwt = our_tl.cycles_matching("dwt") as f64 / cfg.clock_hz;
        let muta_dwt = m.cycles_matching("dwt") as f64 / muta_machine(MutaMode::Muta1).clock_hz;
        assert!(muta_dwt > ours_dwt, "muta {muta_dwt} vs ours {ours_dwt}");
    }

    #[test]
    fn muta0_reports_throughput_halving() {
        let (_, muta) = profiles();
        let tl = simulate_muta(&muta, MutaMode::Muta0);
        assert!(per_frame_seconds(&tl, MutaMode::Muta0) < tl.total_seconds());
    }

    #[test]
    fn muta_has_more_blocks_than_ours() {
        let (ours, muta) = profiles();
        assert!(muta.blocks.len() > 2 * ours.blocks.len());
    }
}
