//! Comparator models for the paper's evaluation:
//!
//! * [`pentium4`] — the Intel Pentium IV 3.2 GHz running optimized but
//!   scalar, un-vectorized Jasper (Figure 9's baseline);
//! * [`muta`] — Muta et al.'s Motion-JPEG2000 Cell encoder (ACM-MM 2007),
//!   modelled from its published design choices (Figures 6-8's baseline).
//!
//! Both consume the same measured [`j2k_core::WorkloadProfile`] as our
//! encoder's Cell mapping, so every comparison below runs identical
//! *measured work* under different machine/scheduling assumptions — the
//! differences in simulated time come only from the design decisions the
//! paper credits.

pub mod muta;
pub mod pentium4;

pub use muta::{simulate_muta, MutaMode};
pub use pentium4::simulate_p4;
