//! Pentium IV 3.2 GHz scalar baseline (Figure 9).
//!
//! Models Jasper compiled with `-O5` on a single x86 core: every stage runs
//! sequentially; nothing is vectorized ("vectorization is not implemented
//! in the Jasper code for the Pentium IV processor"); the lossy DWT uses
//! Jasper's Q13 fixed-point arithmetic ("the Pentium IV processor emulates
//! the floating point operations with the fixed point instructions").

use cellsim::stage::run_sequential;
use cellsim::{Kernel, MachineConfig, ProcKind, Timeline};
use j2k_core::{Arithmetic, Mode, WorkloadProfile};

/// A MachineConfig standing in for the P4 host (3.2 GHz; the bus model is
/// unused because all stages are compute-bound sequential).
pub fn p4_machine() -> MachineConfig {
    MachineConfig {
        num_spes: 0,
        num_ppes: 1,
        clock_hz: 3.2e9,
        cache_line: 64,
        ls_bytes: 0,
        mem_bw_bytes_per_s: 6.4e9,
        dma_latency_cycles: 0,
        ls_code_stack_bytes: 0,
    }
}

/// Simulate a sequential Jasper-style encode of `profile` on the P4.
pub fn simulate_p4(profile: &WorkloadProfile) -> Timeline {
    let cfg = p4_machine();
    let p = ProcKind::PentiumIV;
    let mut tl = Timeline::default();
    let comps = profile.comps as u64;

    let run = |tl: &mut Timeline, name: &str, kernel: Kernel, items: u64| {
        let out = run_sequential(&cfg, p, kernel, items);
        tl.push(out.report(name, &cfg));
    };

    run(
        &mut tl,
        "read-convert",
        Kernel::TypeConvert,
        profile.samples,
    );
    run(
        &mut tl,
        "levelshift-ict",
        Kernel::LevelShiftIct,
        profile.samples,
    );

    // DWT: Jasper is lifting based. The lossy kernel follows the
    // profile's arithmetic — stock Jasper uses Q13 fixed point on x86
    // (pass a FixedQ13 profile for the faithful Figure 9 baseline).
    let (kernel, passes) = match (profile.params.mode, profile.params.arithmetic) {
        (Mode::Lossless, _) => (Kernel::DwtLift53, 2u64),
        (Mode::Lossy { .. }, Arithmetic::FixedQ13) => (Kernel::DwtLift97Fixed, 4u64),
        (Mode::Lossy { .. }, Arithmetic::Float32) => (Kernel::DwtLift97F32, 4u64),
    };
    for (li, lv) in profile.levels.iter().enumerate() {
        let samples = lv.w * lv.h * comps;
        run(
            &mut tl,
            &format!("dwt-vertical-l{}", li + 1),
            kernel,
            samples * passes,
        );
        run(
            &mut tl,
            &format!("dwt-horizontal-l{}", li + 1),
            kernel,
            samples * passes,
        );
        // The split/deinterleave pass (poor cache behavior on the P4 is
        // part of why column-major traversal hurts; folded into DwtSplit).
        run(
            &mut tl,
            &format!("dwt-split-l{}", li + 1),
            Kernel::DwtSplit,
            samples,
        );
    }

    if matches!(profile.params.mode, Mode::Lossy { .. }) {
        run(&mut tl, "quantize", Kernel::Quantize, profile.samples);
    }
    run(&mut tl, "tier1", Kernel::Tier1, profile.tier1_symbols());
    if profile.rate_control_items > 0 {
        run(
            &mut tl,
            "rate-control",
            Kernel::RateControl,
            profile.rate_control_items,
        );
    }
    run(&mut tl, "tier2", Kernel::Tier2, profile.blocks.len() as u64);
    run(&mut tl, "stream-io", Kernel::StreamIo, profile.output_bytes);
    tl
}

#[cfg(test)]
mod tests {
    use super::*;
    use j2k_core::{cell, EncoderParams};

    fn profile(params: &EncoderParams) -> WorkloadProfile {
        let im = imgio::synth::natural(160, 160, 17);
        j2k_core::encode_with_profile(&im, params).unwrap().1
    }

    #[test]
    fn p4_runs_all_stages_sequentially() {
        let tl = simulate_p4(&profile(&EncoderParams::lossless()));
        assert!(tl.stages.iter().all(|s| s.busy_cycles.len() == 1));
        assert!(tl.stages.iter().any(|s| s.name == "tier1"));
        assert!(tl.total_cycles() > 0);
    }

    #[test]
    fn cell_beats_p4_on_dwt_by_a_wide_margin() {
        let p = profile(&EncoderParams::lossless());
        let p4 = simulate_p4(&p);
        let cell_tl = cell::simulate(
            &p,
            &MachineConfig::qs20_single(),
            &cell::SimOptions::default(),
        );
        let p4_dwt = p4.cycles_matching("dwt") as f64 / p4_machine().clock_hz;
        let cell_dwt =
            cell_tl.cycles_matching("dwt") as f64 / MachineConfig::qs20_single().clock_hz;
        let speedup = p4_dwt / cell_dwt;
        assert!(speedup > 4.0, "DWT speedup only {speedup}");
    }

    #[test]
    fn lossy_p4_uses_fixed_point_and_rate_control() {
        let tl = simulate_p4(&profile(&EncoderParams::lossy(0.2)));
        assert!(tl.stages.iter().any(|s| s.name == "rate-control"));
        assert!(tl.stages.iter().any(|s| s.name == "quantize"));
    }
}
