//! Vertical (column) filtering with the paper's three loop schedules.
//!
//! All variants compute the same transform: columns of the region are
//! filtered, and the result is stored *split* — low-pass rows in the top
//! half `[0, nl)`, high-pass rows in the bottom half `[nl, h)`.
//!
//! * [`VerticalVariant::Separate`] — Algorithm 1: an explicit split pass
//!   followed by one pass per lifting step (and a scaling pass for 9/7).
//! * [`VerticalVariant::Interleaved`] — Algorithm 2: an explicit split pass
//!   followed by a single fused pass that software-pipelines all lifting
//!   steps.
//! * [`VerticalVariant::Merged`] — the split is folded into the fused pass.
//!   Writing the high rows in place would overwrite interleaved input rows
//!   that are still needed (Figure 3), so high rows are staged through an
//!   auxiliary buffer and copied back at the end.
//!
//! Outputs are **bit-identical** across variants (asserted by tests): every
//! coefficient undergoes the same arithmetic on the same operand values; only
//! the loop schedule differs. This is the paper's implicit correctness
//! criterion for Algorithm 2 and the merged loop.

use crate::consts::{ALPHA, BETA, DELTA, GAMMA, INV_K, K};
use crate::fixed::{ALPHA_Q13, BETA_Q13, DELTA_Q13, GAMMA_Q13, INV_K_Q13, K_Q13};
use crate::rowops::{self, Region, Rows};
use crate::{high_len, low_len};
use xpart::AlignedPlane;

/// Default column-group width (elements) for cache-blocked vertical passes.
///
/// The paper sizes its column group for the Cell's 128-byte PPE cache lines /
/// DMA granularity; on this x86-64 host the cache line is 64 bytes (16 i32 or
/// f32 elements), so the group only needs to be a multiple of 16 to avoid
/// split lines. The fused 9/7 pipeline keeps an 11-row sliding window, so a
/// group of 256 four-byte elements bounds the window at 11 KiB — comfortably
/// inside a 32 KiB L1D with room for the in-flight region rows. Measured on
/// the kernel bench (1024^2 workload): sub-lane-starved 32-wide groups cost
/// ~1.8x (dwt53_vertical 2.6 vs 4.7 GB/s, dwt97_vertical 1.4 vs 2.7), while
/// 128..=1024 are within run-to-run noise of each other; 256 is the smallest
/// width on that plateau that still L1-bounds the window. See DESIGN.md
/// section 18.
pub const VERT_GROUP_DEFAULT: usize = 256;

/// Column-group width for cache-blocked vertical filtering, overridable via
/// the `J2K_VERT_GROUP` environment variable (read once per process).
pub fn vert_group_cols() -> usize {
    static CHOICE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CHOICE.get_or_init(|| {
        if let Ok(v) = std::env::var("J2K_VERT_GROUP") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        VERT_GROUP_DEFAULT
    })
}

/// Loop schedule of the vertical filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerticalVariant {
    /// Algorithm 1: split + one pass per lifting step.
    Separate,
    /// Algorithm 2: split + single fused lifting pass.
    Interleaved,
    /// Split folded into the fused pass via an auxiliary high-row buffer.
    Merged,
}

// ---------------------------------------------------------------------------
// Row splitting
// ---------------------------------------------------------------------------

/// Deinterleave rows in place: row `2i` -> `i`, row `2i+1` -> `nl + i`.
/// Uses an auxiliary buffer of `nh` rows (half the region).
pub fn split_rows<T: Copy + Default>(rows: &mut Rows<'_, T>) {
    let h = rows.height();
    let nl = low_len(h);
    let nh = high_len(h);
    if h < 2 {
        return;
    }
    let w = rows.width();
    let mut aux = vec![T::default(); nh * w];
    for i in 0..nh {
        aux[i * w..(i + 1) * w].copy_from_slice(rows.row(2 * i + 1));
    }
    for i in 1..nl {
        let (dst, src, _) = rows.dst_src2(i, 2 * i, 2 * i);
        dst.copy_from_slice(src);
    }
    for i in 0..nh {
        rows.row_mut(nl + i)
            .copy_from_slice(&aux[i * w..(i + 1) * w]);
    }
}

/// Interleave rows back: row `i` -> `2i`, row `nl + i` -> `2i + 1`.
pub fn unsplit_rows<T: Copy + Default>(rows: &mut Rows<'_, T>) {
    let h = rows.height();
    let nl = low_len(h);
    let nh = high_len(h);
    if h < 2 {
        return;
    }
    let w = rows.width();
    let mut aux = vec![T::default(); nh * w];
    for i in 0..nh {
        aux[i * w..(i + 1) * w].copy_from_slice(rows.row(nl + i));
    }
    for i in (1..nl).rev() {
        let (dst, src, _) = rows.dst_src2(2 * i, i, i);
        dst.copy_from_slice(src);
    }
    for i in 0..nh {
        rows.row_mut(2 * i + 1)
            .copy_from_slice(&aux[i * w..(i + 1) * w]);
    }
}

// ---------------------------------------------------------------------------
// Generic row I/O for the fused pipelines
// ---------------------------------------------------------------------------

/// Row source/sink abstraction for the fused pipelines. Implementations map
/// logical (even, odd, low, high) row indices to storage:
/// [`SplitIo`] works on an already-split layout in place (Interleaved);
/// [`MergedIo`] reads interleaved rows and stages highs in an aux buffer.
///
/// Loads copy into caller buffers and stores copy out of them — exactly the
/// DMA GET/PUT pattern an SPE uses against its Local Store.
trait VertIo<T> {
    fn load_even(&mut self, i: usize, buf: &mut [T]);
    fn load_odd(&mut self, i: usize, buf: &mut [T]);
    fn store_low(&mut self, i: usize, buf: &[T]);
    fn store_high(&mut self, i: usize, buf: &[T]);
    fn finish(&mut self);
}

/// In-place I/O over a split layout (lows at `[0, nl)`, highs at `[nl, h)`).
struct SplitIo<'a, 'b, T> {
    rows: &'a mut Rows<'b, T>,
    nl: usize,
}

impl<T: Copy + Default> VertIo<T> for SplitIo<'_, '_, T> {
    fn load_even(&mut self, i: usize, buf: &mut [T]) {
        buf.copy_from_slice(self.rows.row(i));
    }
    fn load_odd(&mut self, i: usize, buf: &mut [T]) {
        buf.copy_from_slice(self.rows.row(self.nl + i));
    }
    fn store_low(&mut self, i: usize, buf: &[T]) {
        self.rows.row_mut(i).copy_from_slice(buf);
    }
    fn store_high(&mut self, i: usize, buf: &[T]) {
        self.rows.row_mut(self.nl + i).copy_from_slice(buf);
    }
    fn finish(&mut self) {}
}

/// I/O over the *interleaved* layout: even row `i` is natural row `2i`, odd
/// row `i` is natural row `2i+1`; lows are written in place to rows
/// `[0, nl)` (always behind the read frontier), highs go to the auxiliary
/// buffer and are copied to `[nl, h)` at the end.
struct MergedIo<'a, 'b, T> {
    rows: &'a mut Rows<'b, T>,
    nl: usize,
    aux: Vec<T>,
    w: usize,
}

impl<'a, 'b, T: Copy + Default> MergedIo<'a, 'b, T> {
    fn new(rows: &'a mut Rows<'b, T>) -> Self {
        let h = rows.height();
        let w = rows.width();
        let nh = high_len(h);
        MergedIo {
            nl: low_len(h),
            aux: vec![T::default(); nh * w],
            w,
            rows,
        }
    }
}

impl<T: Copy + Default> VertIo<T> for MergedIo<'_, '_, T> {
    fn load_even(&mut self, i: usize, buf: &mut [T]) {
        buf.copy_from_slice(self.rows.row(2 * i));
    }
    fn load_odd(&mut self, i: usize, buf: &mut [T]) {
        buf.copy_from_slice(self.rows.row(2 * i + 1));
    }
    fn store_low(&mut self, i: usize, buf: &[T]) {
        debug_assert!(i < self.nl);
        self.rows.row_mut(i).copy_from_slice(buf);
    }
    fn store_high(&mut self, i: usize, buf: &[T]) {
        self.aux[i * self.w..(i + 1) * self.w].copy_from_slice(buf);
    }
    fn finish(&mut self) {
        let nh = self.aux.len() / self.w.max(1);
        for i in 0..nh {
            self.rows
                .row_mut(self.nl + i)
                .copy_from_slice(&self.aux[i * self.w..(i + 1) * self.w]);
        }
    }
}

// ---------------------------------------------------------------------------
// 5/3 vertical
// ---------------------------------------------------------------------------

/// Separate passes (Algorithm 1) over an already-split layout.
fn lift53_separate(rows: &mut Rows<'_, i32>) {
    let h = rows.height();
    let nl = low_len(h);
    let nh = high_len(h);
    // Predict pass: high[i] -= (low[i] + low[min(i+1, nl-1)]) >> 1.
    for i in 0..nh {
        let r = (i + 1).min(nl - 1);
        let (d, a, b) = rows.dst_src2(nl + i, i, r);
        rowops::predict53(d, a, b);
    }
    // Update pass: low[i] += (high[i-1|0] + high[min(i, nh-1)] + 2) >> 2.
    for i in 0..nl {
        let l = nl + i.saturating_sub(1).min(nh - 1);
        let r = nl + i.min(nh - 1);
        let (d, a, b) = rows.dst_src2(i, l, r);
        rowops::update53(d, a, b);
    }
}

/// Fused 5/3 pipeline (Algorithm 2 / merged, depending on `io`).
fn pipeline_53(io: &mut dyn VertIo<i32>, h: usize, w: usize) {
    let nl = low_len(h);
    let nh = high_len(h);
    let mut e_cur = vec![0i32; w];
    let mut e_next = vec![0i32; w];
    let mut o = vec![0i32; w];
    let mut hi = vec![0i32; w];
    let mut h_prev = vec![0i32; w];
    let mut lo = vec![0i32; w];
    io.load_even(0, &mut e_cur);
    for i in 0..nh {
        io.load_odd(i, &mut o);
        if 2 * i + 2 < h {
            io.load_even(i + 1, &mut e_next);
        } else {
            e_next.copy_from_slice(&e_cur); // mirror x[h] -> x[h-2]
        }
        rowops::predict53_into(&mut hi, &o, &e_cur, &e_next);
        let left = if i == 0 { &hi } else { &h_prev };
        rowops::update53_into(&mut lo, &e_cur, left, &hi);
        io.store_high(i, &hi);
        io.store_low(i, &lo);
        std::mem::swap(&mut h_prev, &mut hi);
        std::mem::swap(&mut e_cur, &mut e_next);
    }
    if nl > nh {
        // Odd height: final low row, both neighbors mirror to high[nh-1].
        rowops::update53_into(&mut lo, &e_cur, &h_prev, &h_prev);
        io.store_low(nl - 1, &lo);
    }
    io.finish();
}

/// Forward 5/3 vertical filtering of `region` under `variant`.
pub fn fwd53_vertical(plane: &mut AlignedPlane<i32>, region: Region, variant: VerticalVariant) {
    fwd53_rows(Rows::new(plane, region), variant);
}

/// Forward 5/3 vertical filtering of a row view (e.g. one column chunk of a
/// [`crate::rowops::SharedPlane`]). Columns are independent, so running this
/// per-chunk across threads is bit-identical to one full-width call.
pub fn fwd53_rows(mut rows: Rows<'_, i32>, variant: VerticalVariant) {
    let rows = &mut rows;
    let h = rows.height();
    if h < 2 {
        return;
    }
    let w = rows.width();
    let samples = (w * h) as u64;
    let _m = obs::counters::measure(
        obs::counters::Kernel::Dwt53Vertical,
        samples,
        samples * std::mem::size_of::<i32>() as u64,
    );
    // Cache-blocked column groups: columns are independent, so filtering each
    // group in full before moving right is bit-identical to one full-width
    // pass but keeps the fused pipeline's sliding window resident in L1.
    let gw = vert_group_cols();
    let mut x0 = 0;
    while x0 < w {
        let g = gw.min(w - x0);
        let mut sub = rows.subcols(x0, g);
        fwd53_group(&mut sub, variant, h);
        x0 += g;
    }
}

fn fwd53_group(rows: &mut Rows<'_, i32>, variant: VerticalVariant, h: usize) {
    match variant {
        VerticalVariant::Separate => {
            split_rows(rows);
            lift53_separate(rows);
        }
        VerticalVariant::Interleaved => {
            split_rows(rows);
            let w = rows.width();
            let nl = low_len(h);
            let mut io = SplitIo { rows, nl };
            pipeline_53(&mut io, h, w);
        }
        VerticalVariant::Merged => {
            let w = rows.width();
            let mut io = MergedIo::new(rows);
            pipeline_53(&mut io, h, w);
        }
    }
}

/// Inverse 5/3 vertical filtering (split layout in, interleaved out).
pub fn inv53_vertical(plane: &mut AlignedPlane<i32>, region: Region) {
    let mut rows = Rows::new(plane, region);
    let h = rows.height();
    if h < 2 {
        return;
    }
    let w = rows.width();
    let gw = vert_group_cols();
    let mut x0 = 0;
    while x0 < w {
        let g = gw.min(w - x0);
        let mut sub = rows.subcols(x0, g);
        inv53_group(&mut sub, h);
        x0 += g;
    }
}

fn inv53_group(rows: &mut Rows<'_, i32>, h: usize) {
    let nl = low_len(h);
    let nh = high_len(h);
    // Undo update, then undo predict (reverse order of the forward passes).
    for i in 0..nl {
        let l = nl + i.saturating_sub(1).min(nh - 1);
        let r = nl + i.min(nh - 1);
        let (d, a, b) = rows.dst_src2(i, l, r);
        rowops::unupdate53(d, a, b);
    }
    for i in 0..nh {
        let r = (i + 1).min(nl - 1);
        let (d, a, b) = rows.dst_src2(nl + i, i, r);
        rowops::unpredict53(d, a, b);
    }
    unsplit_rows(rows);
}

// ---------------------------------------------------------------------------
// 9/7 vertical (generic over f32 / Q13 arithmetic)
// ---------------------------------------------------------------------------

/// Elementwise arithmetic used by the 9/7 passes, instantiated for `f32`
/// (the paper's choice) and Q13 fixed point (Jasper's representation).
pub trait Arith97: Copy + Default {
    /// The four lifting constants and two scale factors.
    const STEPS: [Self::C; 4];
    /// Low-pass scale.
    const SCALE_LO: Self::C;
    /// High-pass scale.
    const SCALE_HI: Self::C;
    /// Constant type.
    type C: Copy;
    /// `dst += c * (a + b)`.
    fn lift(dst: &mut [Self], a: &[Self], b: &[Self], c: Self::C);
    /// `out = center + c * (a + b)`.
    fn lift_into(out: &mut [Self], center: &[Self], a: &[Self], b: &[Self], c: Self::C);
    /// `dst *= c`.
    fn scale(dst: &mut [Self], c: Self::C);
    /// Negate a constant (for the inverse transform).
    fn neg(c: Self::C) -> Self::C;
    /// Reciprocal pair for unscaling: (1/SCALE_LO, 1/SCALE_HI).
    const UNSCALE_LO: Self::C;
    /// See [`Arith97::UNSCALE_LO`].
    const UNSCALE_HI: Self::C;
}

impl Arith97 for f32 {
    type C = f32;
    const STEPS: [f32; 4] = [ALPHA, BETA, GAMMA, DELTA];
    const SCALE_LO: f32 = INV_K;
    const SCALE_HI: f32 = K;
    const UNSCALE_LO: f32 = K;
    const UNSCALE_HI: f32 = INV_K;
    fn lift(dst: &mut [f32], a: &[f32], b: &[f32], c: f32) {
        rowops::lift_f32(dst, a, b, c);
    }
    fn lift_into(out: &mut [f32], center: &[f32], a: &[f32], b: &[f32], c: f32) {
        rowops::lift_f32_into(out, center, a, b, c);
    }
    fn scale(dst: &mut [f32], c: f32) {
        rowops::scale_f32(dst, c);
    }
    fn neg(c: f32) -> f32 {
        -c
    }
}

impl Arith97 for i32 {
    type C = i32;
    const STEPS: [i32; 4] = [ALPHA_Q13, BETA_Q13, GAMMA_Q13, DELTA_Q13];
    const SCALE_LO: i32 = INV_K_Q13;
    const SCALE_HI: i32 = K_Q13;
    // Q13 reciprocals of the scale factors (rounded): 1/invK = K, 1/K = invK.
    const UNSCALE_LO: i32 = K_Q13;
    const UNSCALE_HI: i32 = INV_K_Q13;
    fn lift(dst: &mut [i32], a: &[i32], b: &[i32], c: i32) {
        rowops::lift_q13(dst, a, b, c);
    }
    fn lift_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32], c: i32) {
        rowops::lift_q13_into(out, center, a, b, c);
    }
    fn scale(dst: &mut [i32], c: i32) {
        rowops::scale_q13(dst, c);
    }
    fn neg(c: i32) -> i32 {
        -c
    }
}

/// Separate passes (split layout): 4 lifting passes + scaling pass.
fn lift97_separate<T: Arith97>(rows: &mut Rows<'_, T>) {
    let h = rows.height();
    let nl = low_len(h);
    let nh = high_len(h);
    for (step, &c) in T::STEPS.iter().enumerate() {
        if step % 2 == 0 {
            // Predict: high[i] += c * (low[i] + low[min(i+1, nl-1)]).
            for i in 0..nh {
                let r = (i + 1).min(nl - 1);
                let (d, a, b) = rows.dst_src2(nl + i, i, r);
                T::lift(d, a, b, c);
            }
        } else {
            // Update: low[i] += c * (high[i-1|0] + high[min(i, nh-1)]).
            for i in 0..nl {
                let l = nl + i.saturating_sub(1).min(nh - 1);
                let r = nl + i.min(nh - 1);
                let (d, a, b) = rows.dst_src2(i, l, r);
                T::lift(d, a, b, c);
            }
        }
    }
    for i in 0..nl {
        T::scale(rows.row_mut(i), T::SCALE_LO);
    }
    for i in 0..nh {
        T::scale(rows.row_mut(nl + i), T::SCALE_HI);
    }
}

/// Fused 9/7 pipeline: the Kutil single-loop, extended with the paper's
/// merged split. Maintains a sliding window of intermediate rows:
/// `dA` (after step 1), `sB` (after step 2), `dC` (after step 3).
fn pipeline_97<T: Arith97>(io: &mut dyn VertIo<T>, h: usize, w: usize) {
    let nl = low_len(h);
    let nh = high_len(h);
    let [ca, cb, cg, cd] = T::STEPS;
    let zero = || vec![T::default(); w];
    let (mut e_cur, mut e_next, mut o) = (zero(), zero(), zero());
    let (mut da_prev, mut da_cur) = (zero(), zero());
    let (mut sb_prev, mut sb_cur) = (zero(), zero());
    let (mut dc_prev2, mut dc_prev) = (zero(), zero());
    let (mut out_lo, mut out_hi) = (zero(), zero());

    io.load_even(0, &mut e_cur);
    for i in 0..nh {
        io.load_odd(i, &mut o);
        if 2 * i + 2 < h {
            io.load_even(i + 1, &mut e_next);
        } else {
            e_next.copy_from_slice(&e_cur);
        }
        // Step 1: dA[i] = o[i] + alpha * (e[i] + e[i+1]).
        T::lift_into(&mut da_cur, &o, &e_cur, &e_next, ca);
        // Step 2: sB[i] = e[i] + beta * (dA[i-1|0] + dA[i]).
        let left = if i == 0 { &da_cur } else { &da_prev };
        T::lift_into(&mut sb_cur, &e_cur, left, &da_cur, cb);
        if i >= 1 {
            // Step 3: dC[i-1] = dA[i-1] + gamma * (sB[i-1] + sB[i]).
            T::lift_into(&mut dc_prev, &da_prev, &sb_prev, &sb_cur, cg);
            // Step 4: sD[i-1] = sB[i-1] + delta * (dC[i-2|0] + dC[i-1]).
            let dcl = if i == 1 { &dc_prev } else { &dc_prev2 };
            T::lift_into(&mut out_lo, &sb_prev, dcl, &dc_prev, cd);
            T::scale(&mut out_lo, T::SCALE_LO);
            io.store_low(i - 1, &out_lo);
            out_hi.copy_from_slice(&dc_prev);
            T::scale(&mut out_hi, T::SCALE_HI);
            io.store_high(i - 1, &out_hi);
            std::mem::swap(&mut dc_prev2, &mut dc_prev);
        }
        std::mem::swap(&mut da_prev, &mut da_cur);
        std::mem::swap(&mut sb_prev, &mut sb_cur);
        std::mem::swap(&mut e_cur, &mut e_next);
    }
    // Drain the pipeline: rows nh-1 (high) and nh-1 / nl-1 (low).
    if nh >= 1 {
        let last = nh - 1;
        if nl > nh {
            // Odd height: one extra even row e[nl-1] (in e_cur after the
            // final swap). sB[nl-1] = e + beta * 2 * dA[nh-1].
            let mut sb_last = zero();
            T::lift_into(&mut sb_last, &e_cur, &da_prev, &da_prev, cb);
            // dC[nh-1] = dA[nh-1] + gamma * (sB[nh-1] + sB[nl-1]).
            let mut dc_last = zero();
            T::lift_into(&mut dc_last, &da_prev, &sb_prev, &sb_last, cg);
            // sD[nh-1] = sB[nh-1] + delta * (dC[nh-2|0] + dC[nh-1]).
            let dcl = if nh == 1 { &dc_last } else { &dc_prev2 };
            T::lift_into(&mut out_lo, &sb_prev, dcl, &dc_last, cd);
            T::scale(&mut out_lo, T::SCALE_LO);
            io.store_low(last, &out_lo);
            // sD[nl-1] = sB[nl-1] + delta * 2 * dC[nh-1].
            T::lift_into(&mut out_lo, &sb_last, &dc_last, &dc_last, cd);
            T::scale(&mut out_lo, T::SCALE_LO);
            io.store_low(nl - 1, &out_lo);
            out_hi.copy_from_slice(&dc_last);
            T::scale(&mut out_hi, T::SCALE_HI);
            io.store_high(last, &out_hi);
        } else {
            // Even height: sB[nl] mirrors to sB[nl-1] = sb_prev.
            let mut dc_last = zero();
            T::lift_into(&mut dc_last, &da_prev, &sb_prev, &sb_prev, cg);
            let dcl = if nh == 1 { &dc_last } else { &dc_prev2 };
            T::lift_into(&mut out_lo, &sb_prev, dcl, &dc_last, cd);
            T::scale(&mut out_lo, T::SCALE_LO);
            io.store_low(last, &out_lo);
            out_hi.copy_from_slice(&dc_last);
            T::scale(&mut out_hi, T::SCALE_HI);
            io.store_high(last, &out_hi);
        }
    }
    io.finish();
}

/// Forward 9/7 vertical filtering of `region` under `variant`. `T` is `f32`
/// for the paper's floating-point path or `i32` for Q13 fixed point.
pub fn fwd97_vertical<T: Arith97>(
    plane: &mut AlignedPlane<T>,
    region: Region,
    variant: VerticalVariant,
) {
    fwd97_rows(Rows::new(plane, region), variant);
}

/// Forward 9/7 vertical filtering of a row view (e.g. one column chunk of a
/// [`crate::rowops::SharedPlane`]). Columns are independent, so running this
/// per-chunk across threads is bit-identical to one full-width call.
pub fn fwd97_rows<T: Arith97>(mut rows: Rows<'_, T>, variant: VerticalVariant) {
    let rows = &mut rows;
    let h = rows.height();
    if h < 2 {
        return;
    }
    let w = rows.width();
    let samples = (w * h) as u64;
    let _m = obs::counters::measure(
        obs::counters::Kernel::Dwt97Vertical,
        samples,
        samples * std::mem::size_of::<T>() as u64,
    );
    // Cache-blocked column groups; see `fwd53_rows`.
    let gw = vert_group_cols();
    let mut x0 = 0;
    while x0 < w {
        let g = gw.min(w - x0);
        let mut sub = rows.subcols(x0, g);
        fwd97_group(&mut sub, variant, h);
        x0 += g;
    }
}

fn fwd97_group<T: Arith97>(rows: &mut Rows<'_, T>, variant: VerticalVariant, h: usize) {
    match variant {
        VerticalVariant::Separate => {
            split_rows(rows);
            lift97_separate(rows);
        }
        VerticalVariant::Interleaved => {
            split_rows(rows);
            let w = rows.width();
            let nl = low_len(h);
            let mut io = SplitIo { rows, nl };
            pipeline_97(&mut io, h, w);
        }
        VerticalVariant::Merged => {
            let w = rows.width();
            let mut io = MergedIo::new(rows);
            pipeline_97(&mut io, h, w);
        }
    }
}

/// Inverse 9/7 vertical filtering (split layout in, interleaved out).
pub fn inv97_vertical<T: Arith97>(plane: &mut AlignedPlane<T>, region: Region) {
    let mut rows = Rows::new(plane, region);
    let h = rows.height();
    if h < 2 {
        return;
    }
    let w = rows.width();
    let gw = vert_group_cols();
    let mut x0 = 0;
    while x0 < w {
        let g = gw.min(w - x0);
        let mut sub = rows.subcols(x0, g);
        inv97_group(&mut sub, h);
        x0 += g;
    }
}

fn inv97_group<T: Arith97>(rows: &mut Rows<'_, T>, h: usize) {
    let nl = low_len(h);
    let nh = high_len(h);
    for i in 0..nl {
        T::scale(rows.row_mut(i), T::UNSCALE_LO);
    }
    for i in 0..nh {
        T::scale(rows.row_mut(nl + i), T::UNSCALE_HI);
    }
    // Reverse lifting: steps 4, 3, 2, 1 with negated constants.
    for (step, &c) in T::STEPS.iter().enumerate().rev() {
        let c = T::neg(c);
        if step % 2 == 0 {
            for i in 0..nh {
                let r = (i + 1).min(nl - 1);
                let (d, a, b) = rows.dst_src2(nl + i, i, r);
                T::lift(d, a, b, c);
            }
        } else {
            for i in 0..nl {
                let l = nl + i.saturating_sub(1).min(nh - 1);
                let r = nl + i.min(nh - 1);
                let (d, a, b) = rows.dst_src2(i, l, r);
                T::lift(d, a, b, c);
            }
        }
    }
    unsplit_rows(rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line;

    fn make_plane(w: usize, h: usize, seed: u32) -> AlignedPlane<i32> {
        let mut p = AlignedPlane::<i32>::new(w, h).unwrap();
        let mut x = seed | 1;
        p.for_each_mut(|_, _, v| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((x >> 8) % 511) as i32 - 255;
        });
        p
    }

    /// Reference: apply the 1-D line transform down every column.
    fn reference_cols_53(p: &AlignedPlane<i32>) -> AlignedPlane<i32> {
        let (w, h) = (p.width(), p.height());
        let mut out = p.clone();
        let mut col = vec![0i32; h];
        let mut s = Vec::new();
        for x in 0..w {
            for (y, v) in col.iter_mut().enumerate() {
                *v = p.get(x, y);
            }
            line::fwd_53(&mut col, &mut s);
            for (y, v) in col.iter().enumerate() {
                out.set(x, y, *v);
            }
        }
        out
    }

    fn reference_cols_97(p: &AlignedPlane<f32>) -> AlignedPlane<f32> {
        let (w, h) = (p.width(), p.height());
        let mut out = p.clone();
        let mut col = vec![0f32; h];
        let mut s = Vec::new();
        for x in 0..w {
            for (y, v) in col.iter_mut().enumerate() {
                *v = p.get(x, y);
            }
            line::fwd_97(&mut col, &mut s);
            for (y, v) in col.iter().enumerate() {
                out.set(x, y, *v);
            }
        }
        out
    }

    #[test]
    fn all_53_variants_match_line_reference() {
        for (w, h) in [
            (8usize, 8usize),
            (5, 7),
            (16, 9),
            (3, 2),
            (7, 16),
            (10, 3),
            (4, 2),
        ] {
            let p0 = make_plane(w, h, (w * 31 + h) as u32);
            let want = reference_cols_53(&p0);
            for variant in [
                VerticalVariant::Separate,
                VerticalVariant::Interleaved,
                VerticalVariant::Merged,
            ] {
                let mut p = p0.clone();
                fwd53_vertical(&mut p, Region::full(&p0), variant);
                assert_eq!(
                    p.to_dense(),
                    want.to_dense(),
                    "{variant:?} {w}x{h} mismatch"
                );
            }
        }
    }

    #[test]
    fn all_97_variants_bit_identical_and_match_reference() {
        for (w, h) in [
            (8usize, 8usize),
            (5, 7),
            (16, 9),
            (3, 2),
            (7, 16),
            (4, 5),
            (6, 2),
            (2, 3),
        ] {
            let p0 = make_plane(w, h, (w * 7 + h) as u32).to_f32();
            let want = reference_cols_97(&p0);
            for variant in [
                VerticalVariant::Separate,
                VerticalVariant::Interleaved,
                VerticalVariant::Merged,
            ] {
                let mut p = p0.clone();
                fwd97_vertical(&mut p, Region::full(&p0), variant);
                let got = p.to_dense();
                let exp = want.to_dense();
                for (i, (g, e)) in got.iter().zip(&exp).enumerate() {
                    assert!(
                        (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                        "{variant:?} {w}x{h} elem {i}: {g} vs {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_97_variants_bit_identical_to_separate() {
        // The pipelines perform the same arithmetic on the same operands, so
        // f32 results must be *exactly* equal, not just close.
        let p0 = make_plane(13, 12, 99).to_f32();
        let mut sep = p0.clone();
        fwd97_vertical(&mut sep, Region::full(&p0), VerticalVariant::Separate);
        for variant in [VerticalVariant::Interleaved, VerticalVariant::Merged] {
            let mut p = p0.clone();
            fwd97_vertical(&mut p, Region::full(&p0), variant);
            assert_eq!(
                p.to_dense(),
                sep.to_dense(),
                "{variant:?} not bit-identical"
            );
        }
    }

    #[test]
    fn vertical_53_roundtrip() {
        for (w, h) in [(8usize, 8usize), (5, 7), (16, 9), (3, 2), (9, 31)] {
            let p0 = make_plane(w, h, 7);
            for variant in [
                VerticalVariant::Separate,
                VerticalVariant::Interleaved,
                VerticalVariant::Merged,
            ] {
                let mut p = p0.clone();
                fwd53_vertical(&mut p, Region::full(&p0), variant);
                inv53_vertical(&mut p, Region::full(&p0));
                assert_eq!(p.to_dense(), p0.to_dense(), "{variant:?} {w}x{h}");
            }
        }
    }

    #[test]
    fn vertical_97_roundtrip_f32() {
        for (w, h) in [(8usize, 8usize), (5, 7), (16, 9), (9, 31)] {
            let p0 = make_plane(w, h, 11).to_f32();
            let mut p = p0.clone();
            fwd97_vertical(&mut p, Region::full(&p0), VerticalVariant::Merged);
            inv97_vertical(&mut p, Region::full(&p0));
            for (g, e) in p.to_dense().iter().zip(p0.to_dense()) {
                assert!((g - e).abs() < 1e-2, "{g} vs {e}");
            }
        }
    }

    #[test]
    fn vertical_97_roundtrip_fixed() {
        let p0 = make_plane(12, 16, 13);
        let q0 = p0.map(crate::fixed::to_fixed);
        let mut q = q0.clone();
        fwd97_vertical(&mut q, Region::full(&q0), VerticalVariant::Merged);
        inv97_vertical(&mut q, Region::full(&q0));
        for (g, e) in q.to_dense().iter().zip(p0.to_dense()) {
            let g = crate::fixed::from_fixed(*g);
            assert!((g - e).abs() <= 1, "{g} vs {e}");
        }
    }

    #[test]
    fn split_unsplit_roundtrip() {
        for h in [2usize, 3, 4, 5, 8, 9] {
            let p0 = make_plane(6, h, h as u32);
            let mut p = p0.clone();
            let mut rows = Rows::new(&mut p, Region::full(&p0));
            split_rows(&mut rows);
            unsplit_rows(&mut rows);
            assert_eq!(p.to_dense(), p0.to_dense(), "h={h}");
        }
    }

    #[test]
    fn split_moves_rows_correctly() {
        let mut p = AlignedPlane::<i32>::new(2, 5).unwrap();
        for y in 0..5 {
            p.row_mut(y).fill(y as i32);
        }
        let mut rows = Rows::new(
            &mut p,
            Region {
                x0: 0,
                y0: 0,
                w: 2,
                h: 5,
            },
        );
        split_rows(&mut rows);
        let got: Vec<i32> = (0..5).map(|y| p.get(0, y)).collect();
        assert_eq!(got, vec![0, 2, 4, 1, 3]);
    }

    #[test]
    fn subregion_vertical_only_touches_region() {
        let p0 = make_plane(16, 8, 3);
        let mut p = p0.clone();
        let region = Region {
            x0: 4,
            y0: 0,
            w: 8,
            h: 8,
        };
        fwd53_vertical(&mut p, region, VerticalVariant::Merged);
        for y in 0..8 {
            for x in 0..16 {
                if !(4..12).contains(&x) {
                    assert_eq!(p.get(x, y), p0.get(x, y), "({x},{y}) modified");
                }
            }
        }
    }

    #[test]
    fn height_one_is_identity() {
        let p0 = make_plane(5, 1, 1);
        for variant in [
            VerticalVariant::Separate,
            VerticalVariant::Interleaved,
            VerticalVariant::Merged,
        ] {
            let mut p = p0.clone();
            fwd53_vertical(&mut p, Region::full(&p0), variant);
            assert_eq!(p.to_dense(), p0.to_dense());
        }
    }

    // -- cache-blocking edge/remainder cases ------------------------------
    //
    // The blocked drivers walk the region in column groups of
    // `vert_group_cols()` elements; the widths below force a final group
    // narrower than one SIMD lane (1..=3 columns) after one or two full
    // groups, which is the remainder path most likely to go wrong.

    #[test]
    fn group_tail_narrower_than_simd_lane_53() {
        let g = vert_group_cols();
        for w in [g + 1, g + 3, 2 * g + 2] {
            let p0 = make_plane(w, 11, w as u32);
            let want = reference_cols_53(&p0);
            for variant in [
                VerticalVariant::Separate,
                VerticalVariant::Interleaved,
                VerticalVariant::Merged,
            ] {
                let mut p = p0.clone();
                fwd53_vertical(&mut p, Region::full(&p0), variant);
                assert_eq!(p.to_dense(), want.to_dense(), "{variant:?} w={w}");
                inv53_vertical(&mut p, Region::full(&p0));
                assert_eq!(p.to_dense(), p0.to_dense(), "{variant:?} w={w} inverse");
            }
        }
    }

    #[test]
    fn group_tail_narrower_than_simd_lane_97() {
        let g = vert_group_cols();
        for w in [g + 1, g + 2] {
            let p0 = make_plane(w, 9, w as u32).to_f32();
            let want = reference_cols_97(&p0);
            let mut p = p0.clone();
            fwd97_vertical(&mut p, Region::full(&p0), VerticalVariant::Merged);
            // The blocked pass must be *bit*-identical to the per-column
            // reference: columns are independent, grouping only reorders
            // them.
            let got: Vec<u32> = p.to_dense().iter().map(|v| v.to_bits()).collect();
            let exp: Vec<u32> = want.to_dense().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, exp, "w={w}");
            inv97_vertical(&mut p, Region::full(&p0));
            for (g2, e) in p.to_dense().iter().zip(p0.to_dense()) {
                assert!((g2 - e).abs() < 1e-2, "w={w}: {g2} vs {e}");
            }
        }
    }

    #[test]
    fn single_column_plane_matches_line_transform() {
        for h in [2usize, 3, 5, 31] {
            let p0 = make_plane(1, h, h as u32);
            let want = reference_cols_53(&p0);
            let mut p = p0.clone();
            fwd53_vertical(&mut p, Region::full(&p0), VerticalVariant::Merged);
            assert_eq!(p.to_dense(), want.to_dense(), "h={h}");
            inv53_vertical(&mut p, Region::full(&p0));
            assert_eq!(p.to_dense(), p0.to_dense(), "h={h} inverse");

            let f0 = p0.to_f32();
            let wantf = reference_cols_97(&f0);
            let mut f = f0.clone();
            fwd97_vertical(&mut f, Region::full(&f0), VerticalVariant::Merged);
            let got: Vec<u32> = f.to_dense().iter().map(|v| v.to_bits()).collect();
            let exp: Vec<u32> = wantf.to_dense().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, exp, "h={h} 9/7");
        }
    }

    #[test]
    fn odd_height_lifting_boundaries_pinned() {
        // Odd heights split into low_len = ceil(h/2), high_len = floor(h/2):
        // the final update step reads high[nh-1] for *both* neighbors of the
        // last low sample. A linear ramp makes every 5/3 detail coefficient
        // zero and leaves the ramp's even samples (plus the +2>>2 rounding
        // carry, which is 0 here) in the low band — a fully pinned result.
        let mut p = AlignedPlane::<i32>::new(1, 5).unwrap();
        for y in 0..5 {
            p.set(0, y, (y + 1) as i32);
        }
        let full = Region::full(&p);
        fwd53_vertical(&mut p, full, VerticalVariant::Merged);
        assert_eq!(p.to_dense(), vec![1, 3, 5, 0, 0]);
        inv53_vertical(&mut p, full);
        assert_eq!(p.to_dense(), vec![1, 2, 3, 4, 5]);

        // And the asymmetric tails roundtrip for every odd height.
        for h in [3usize, 5, 7, 9, 17] {
            let p0 = make_plane(5, h, 2 * h as u32 + 1);
            let want = reference_cols_53(&p0);
            let mut q = p0.clone();
            fwd53_vertical(&mut q, Region::full(&p0), VerticalVariant::Merged);
            assert_eq!(q.to_dense(), want.to_dense(), "h={h} forward");
            inv53_vertical(&mut q, Region::full(&p0));
            assert_eq!(q.to_dense(), p0.to_dense(), "h={h} inverse");

            let f0 = p0.to_f32();
            let mut f = f0.clone();
            fwd97_vertical(&mut f, Region::full(&f0), VerticalVariant::Merged);
            inv97_vertical(&mut f, Region::full(&f0));
            for (g, e) in f.to_dense().iter().zip(f0.to_dense()) {
                assert!((g - e).abs() < 1e-2, "h={h} 9/7: {g} vs {e}");
            }
        }
    }

    #[test]
    fn blocked_output_independent_of_group_width() {
        // Column groups are independent, so any tiling must produce the
        // same bytes. Emulate a tiny group width by transforming the plane
        // in hand-tiled subregions and compare with the one-shot driver.
        let p0 = make_plane(23, 10, 77);
        let mut whole = p0.clone();
        fwd53_vertical(&mut whole, Region::full(&p0), VerticalVariant::Merged);
        for gw in [1usize, 2, 3, 5, 7] {
            let mut tiled = p0.clone();
            let mut x0 = 0;
            while x0 < 23 {
                let w = gw.min(23 - x0);
                let r = Region {
                    x0,
                    y0: 0,
                    w,
                    h: 10,
                };
                fwd53_vertical(&mut tiled, r, VerticalVariant::Merged);
                x0 += w;
            }
            assert_eq!(tiled.to_dense(), whole.to_dense(), "gw={gw}");
        }
    }
}
