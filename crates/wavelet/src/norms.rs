//! Numerically computed L2 norms of the synthesis basis functions.
//!
//! The JPEG2000 normalization used here (low DC gain 1, high Nyquist gain 2)
//! is not orthonormal, so a unit quantization error on a coefficient at
//! depth `d` produces `‖basis‖₂` units of error in the image domain. Rate
//! control and quantizer step selection weight distortion by these norms.
//! Rather than hard-coding the textbook table we compute the norms once by
//! running the actual inverse transform on unit impulses — this stays
//! correct even if the lifting constants change.

use crate::line;
use crate::{high_len, low_len};
use std::sync::OnceLock;

/// Maximum decomposition depth for which norms are tabulated.
pub const MAX_LEVELS: usize = 10;

/// 1-D synthesis L2 norms `(low[d], high[d])` for depths `1..=MAX_LEVELS`
/// (index 0 = depth 1).
fn norms_1d_97() -> &'static [(f64, f64); MAX_LEVELS] {
    static CELL: OnceLock<[(f64, f64); MAX_LEVELS]> = OnceLock::new();
    CELL.get_or_init(|| {
        let n = 1usize << (MAX_LEVELS + 4);
        let mut out = [(0.0, 0.0); MAX_LEVELS];
        let mut scratch = Vec::new();
        for d in 1..=MAX_LEVELS {
            for (hi, slot) in [(false, 0usize), (true, 1)] {
                // Band extents after d levels of 1-D decomposition of n.
                let band_lo = n >> d;
                let (start, len) = if hi {
                    (band_lo, (n >> (d - 1)) - band_lo)
                } else {
                    (0, band_lo)
                };
                let mut x = vec![0.0f32; n];
                x[start + len / 2] = 1.0;
                // Invert from the deepest level out, like inverse_2d.
                for lev in (1..=d).rev() {
                    let extent = n >> (lev - 1);
                    line::inv_97(&mut x[..extent], &mut scratch);
                }
                let norm = x
                    .iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>()
                    .sqrt();
                if slot == 0 {
                    out[d - 1].0 = norm;
                } else {
                    out[d - 1].1 = norm;
                }
            }
        }
        out
    })
}

/// L2 norm of the 2-D 9/7 synthesis basis for a coefficient of the given
/// band at depth `level` (1 = finest). Separable product of the 1-D norms.
pub fn l2_norm_97(band: crate::Band, level: usize) -> f64 {
    let level = level.clamp(1, MAX_LEVELS);
    let (lo, hi) = norms_1d_97()[level - 1];
    match band {
        crate::Band::LL => lo * lo,
        crate::Band::HL | crate::Band::LH => lo * hi,
        crate::Band::HH => hi * hi,
    }
}

/// L2 norm for the reversible 5/3 path (used only to weight distortion in
/// lossless-progressive contexts; computed the same way).
pub fn l2_norm_53(band: crate::Band, level: usize) -> f64 {
    static CELL: OnceLock<[(f64, f64); MAX_LEVELS]> = OnceLock::new();
    let norms = CELL.get_or_init(|| {
        let n = 1usize << (MAX_LEVELS + 4);
        let mut out = [(0.0, 0.0); MAX_LEVELS];
        let mut scratch = Vec::new();
        for d in 1..=MAX_LEVELS {
            for (hi, slot) in [(false, 0usize), (true, 1)] {
                let band_lo = n >> d;
                let (start, len) = if hi {
                    (band_lo, (n >> (d - 1)) - band_lo)
                } else {
                    (0, band_lo)
                };
                // Use a large impulse so integer lifting rounding is
                // negligible relative to the basis shape.
                let amp = 1 << 16;
                let mut x = vec![0i32; n];
                x[start + len / 2] = amp;
                for lev in (1..=d).rev() {
                    let extent = n >> (lev - 1);
                    line::inv_53(&mut x[..extent], &mut scratch);
                }
                let norm = x
                    .iter()
                    .map(|&v| {
                        let f = v as f64 / amp as f64;
                        f * f
                    })
                    .sum::<f64>()
                    .sqrt();
                if slot == 0 {
                    out[d - 1].0 = norm;
                } else {
                    out[d - 1].1 = norm;
                }
            }
        }
        out
    });
    let level = level.clamp(1, MAX_LEVELS);
    let (lo, hi) = norms[level - 1];
    match band {
        crate::Band::LL => lo * lo,
        crate::Band::HL | crate::Band::LH => lo * hi,
        crate::Band::HH => hi * hi,
    }
}

/// Sanity helper exposing the raw 1-D norms (used by tests and docs).
pub fn norms_1d(level: usize) -> (f64, f64) {
    norms_1d_97()[level.clamp(1, MAX_LEVELS) - 1]
}

#[allow(unused)]
fn band_extent_check(n: usize, d: usize) -> (usize, usize) {
    // Verify the shift arithmetic agrees with low_len/high_len for powers
    // of two (compile-time documentation; exercised in tests).
    let mut e = n;
    for _ in 0..d {
        e = low_len(e);
    }
    (e, high_len(e * 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Band;

    #[test]
    fn depth1_norms_match_pinned_values() {
        // Pinned values for *this* normalization (analysis low DC gain 1,
        // high Nyquist gain 2). The corresponding 5/3 norms below come out
        // as the textbook 1.5 / 0.71875, validating the methodology; the
        // 9/7 values differ from tables that assume the sqrt(2) analysis
        // convention only by that normalization factor.
        let (lo, hi) = norms_1d(1);
        assert!((lo - 1.4021).abs() < 0.01, "lo {lo}");
        assert!((hi - 0.7213).abs() < 0.01, "hi {hi}");
    }

    #[test]
    fn depth1_53_norms_are_textbook() {
        assert!((l2_norm_53(Band::LL, 1) - 1.5).abs() < 1e-3);
        assert!((l2_norm_53(Band::HH, 1) - 0.71875).abs() < 1e-2);
    }

    #[test]
    fn norms_grow_with_depth() {
        for d in 2..=5 {
            let (lo_d, _) = norms_1d(d);
            let (lo_p, _) = norms_1d(d - 1);
            assert!(lo_d > lo_p, "depth {d}: {lo_d} <= {lo_p}");
        }
    }

    #[test]
    fn band_norm_ordering() {
        for d in 1..=5 {
            assert!(l2_norm_97(Band::LL, d) >= l2_norm_97(Band::HL, d));
            assert!(l2_norm_97(Band::HL, d) >= l2_norm_97(Band::HH, d));
            assert_eq!(l2_norm_97(Band::HL, d), l2_norm_97(Band::LH, d));
        }
    }

    #[test]
    fn norms_53_positive_and_ordered() {
        for d in 1..=5 {
            assert!(l2_norm_53(Band::HH, d) > 0.0);
            assert!(l2_norm_53(Band::LL, d) >= l2_norm_53(Band::HH, d));
        }
    }
}
