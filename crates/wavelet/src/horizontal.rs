//! Horizontal (row) filtering.
//!
//! "For the horizontal filtering, we assign an identical number of rows to
//! each SPE, and a single row becomes a unit of data transfer and
//! computation." Each row is transformed independently by the 1-D lifting
//! kernels of [`crate::line`] / [`crate::fixed`].

use crate::rowops::{Region, Rows};
use crate::{fixed, line};
use xpart::AlignedPlane;

/// Forward 5/3 on every row of `region`.
pub fn fwd53_horizontal(plane: &mut AlignedPlane<i32>, region: Region) {
    fwd53_rows(Rows::new(plane, region));
}

/// Forward 5/3 on every row of a row view (e.g. one row band of a
/// [`crate::rowops::SharedPlane`]). Rows are independent, so running this
/// per-band across threads is bit-identical to one full-height call.
pub fn fwd53_rows(mut rows: Rows<'_, i32>) {
    let samples = (rows.width() * rows.height()) as u64;
    let _m = obs::counters::measure(
        obs::counters::Kernel::Dwt53Horizontal,
        samples,
        samples * std::mem::size_of::<i32>() as u64,
    );
    let mut scratch = Vec::new();
    for y in 0..rows.height() {
        line::fwd_53(rows.row_mut(y), &mut scratch);
    }
}

/// Inverse 5/3 on every row of `region`.
pub fn inv53_horizontal(plane: &mut AlignedPlane<i32>, region: Region) {
    let mut rows = Rows::new(plane, region);
    let mut scratch = Vec::new();
    for y in 0..rows.height() {
        line::inv_53(rows.row_mut(y), &mut scratch);
    }
}

/// Forward 9/7 (f32) on every row of `region`.
pub fn fwd97_horizontal(plane: &mut AlignedPlane<f32>, region: Region) {
    fwd97_rows(Rows::new(plane, region));
}

/// Forward 9/7 (f32) on every row of a row view; see [`fwd53_rows`].
pub fn fwd97_rows(mut rows: Rows<'_, f32>) {
    let samples = (rows.width() * rows.height()) as u64;
    let _m = obs::counters::measure(
        obs::counters::Kernel::Dwt97Horizontal,
        samples,
        samples * std::mem::size_of::<f32>() as u64,
    );
    let mut scratch = Vec::new();
    for y in 0..rows.height() {
        line::fwd_97(rows.row_mut(y), &mut scratch);
    }
}

/// Inverse 9/7 (f32) on every row of `region`.
pub fn inv97_horizontal(plane: &mut AlignedPlane<f32>, region: Region) {
    let mut rows = Rows::new(plane, region);
    let mut scratch = Vec::new();
    for y in 0..rows.height() {
        line::inv_97(rows.row_mut(y), &mut scratch);
    }
}

/// Forward 9/7 (Q13 fixed point) on every row of `region`.
pub fn fwd97_fixed_horizontal(plane: &mut AlignedPlane<i32>, region: Region) {
    fwd97_fixed_rows(Rows::new(plane, region));
}

/// Forward 9/7 (Q13) on every row of a row view; see [`fwd53_rows`].
pub fn fwd97_fixed_rows(mut rows: Rows<'_, i32>) {
    let samples = (rows.width() * rows.height()) as u64;
    let _m = obs::counters::measure(
        obs::counters::Kernel::Dwt97Horizontal,
        samples,
        samples * std::mem::size_of::<i32>() as u64,
    );
    let mut scratch = Vec::new();
    for y in 0..rows.height() {
        fixed::fwd_97_fixed(rows.row_mut(y), &mut scratch);
    }
}

/// Inverse 9/7 (Q13 fixed point) on every row of `region`.
pub fn inv97_fixed_horizontal(plane: &mut AlignedPlane<i32>, region: Region) {
    let mut rows = Rows::new(plane, region);
    let mut scratch = Vec::new();
    for y in 0..rows.height() {
        fixed::inv_97_fixed(rows.row_mut(y), &mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_53_matches_line_per_row() {
        let mut p = AlignedPlane::<i32>::new(9, 3).unwrap();
        p.for_each_mut(|x, y, v| *v = (x * x + y * 13) as i32 - 20);
        let orig = p.clone();
        fwd53_horizontal(&mut p, Region::full(&orig));
        let mut s = Vec::new();
        for y in 0..3 {
            let mut row = orig.row(y).to_vec();
            crate::line::fwd_53(&mut row, &mut s);
            assert_eq!(p.row(y), &row[..], "row {y}");
        }
    }

    #[test]
    fn horizontal_53_roundtrip_region() {
        let mut p = AlignedPlane::<i32>::new(16, 4).unwrap();
        p.for_each_mut(|x, y, v| *v = (x * 7 + y) as i32 % 97 - 48);
        let orig = p.clone();
        let region = Region {
            x0: 2,
            y0: 1,
            w: 11,
            h: 2,
        };
        fwd53_horizontal(&mut p, region);
        inv53_horizontal(&mut p, region);
        assert_eq!(p.to_dense(), orig.to_dense());
    }

    #[test]
    fn horizontal_97_roundtrip() {
        let mut p = AlignedPlane::<f32>::new(33, 5).unwrap();
        p.for_each_mut(|x, y, v| *v = (x as f32 - 16.0) * (y as f32 + 1.0));
        let orig = p.clone();
        fwd97_horizontal(&mut p, Region::full(&orig));
        inv97_horizontal(&mut p, Region::full(&orig));
        for (g, e) in p.to_dense().iter().zip(orig.to_dense()) {
            assert!((g - e).abs() < 1e-2);
        }
    }

    #[test]
    fn horizontal_97_fixed_roundtrip() {
        let mut p = AlignedPlane::<i32>::new(17, 4).unwrap();
        p.for_each_mut(|x, y, v| *v = crate::fixed::to_fixed((x * 3) as i32 - (y * 11) as i32));
        let orig = p.clone();
        fwd97_fixed_horizontal(&mut p, Region::full(&orig));
        inv97_fixed_horizontal(&mut p, Region::full(&orig));
        for (g, e) in p.to_dense().iter().zip(orig.to_dense()) {
            assert!((crate::fixed::from_fixed(g - e)).abs() <= 1);
        }
    }
}
