//! 1-D lifting transforms on contiguous signals.
//!
//! These are the reference semantics for everything else in the crate: the
//! vertical variants and the convolution baseline are tested against them.
//!
//! Convention: input is the interleaved signal `x[0..n]` (even indices are
//! the low-pass phase); output is *deinterleaved in place* — low band in
//! `x[0..low_len(n)]`, high band in `x[low_len(n)..n]`. Boundary handling is
//! whole-sample symmetric extension (`x[-1] = x[1]`, `x[n] = x[n-2]`).
//!
//! ## Loop structure
//!
//! The transforms deinterleave *first* and then run every lifting step as a
//! contiguous slice operation over the half-bands (through the dispatching
//! [`crate::rowops`] kernels), instead of striding by 2 over the interleaved
//! signal. The arithmetic is unchanged: for the predict-phase steps the
//! interleaved stencil `x[2i+1] ⊕= f(x[2i], x[mirror(2i+2)])` is exactly
//! `high[i] ⊕= f(low[i], low[min(i+1, nl-1)])` in the split domain, and the
//! update-phase stencil `x[2i] ⊕= f(x[mirror(2i-1)], x[mirror(2i+1)])` is
//! `low[i] ⊕= f(high[clamp(i-1)], high[min(i, nh-1)])` — the whole-sample
//! symmetric extension becomes an index clamp because the mirror of an
//! even/odd index always lands on the opposite phase's edge sample. Only
//! the clamped boundary elements (at most two per step) run outside the
//! bulk slice kernel, so the hot loops are stride-1 and vectorize.

use crate::consts::{ALPHA, BETA, DELTA, GAMMA, INV_K, K};
use crate::rowops;
use crate::{high_len, low_len};

/// Symmetric extension of index `i` (as isize) into `0..n`. The bulk loops
/// below bake the mirror into index clamps; this is kept as the reference
/// definition for the tests.
#[cfg_attr(not(test), allow(dead_code))]
#[inline]
fn mirror(i: isize, n: usize) -> usize {
    let n = n as isize;
    debug_assert!(n >= 1);
    let mut i = i;
    // One reflection suffices for the lifting stencils used here (|i| < 2n).
    if i < 0 {
        i = -i;
    }
    if i >= n {
        i = 2 * (n - 1) - i;
    }
    debug_assert!((0..n).contains(&i));
    i as usize
}

/// Forward reversible 5/3 transform of one line.
pub fn fwd_53(x: &mut [i32], scratch: &mut Vec<i32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    let nl = low_len(n);
    let nh = high_len(n);
    scratch.clear();
    scratch.extend_from_slice(x);
    let (low, high) = x.split_at_mut(nl);
    rowops::deinterleave_i32(scratch, low, high);
    // Predict (high): high[i] -= (low[i] + low[min(i+1, nl-1)]) >> 1.
    let bulk = nh.min(nl - 1);
    rowops::predict53(&mut high[..bulk], &low[..bulk], &low[1..]);
    for i in bulk..nh {
        high[i] -= (low[i] + low[nl - 1]) >> 1;
    }
    // Update (low): low[i] += (high[max(i-1,0)] + high[min(i,nh-1)] + 2) >> 2.
    low[0] += (high[0] + high[0] + 2) >> 2;
    rowops::update53(&mut low[1..nh], &high[..nh - 1], &high[1..]);
    let tail = (high[nh - 1] + high[nh - 1] + 2) >> 2;
    for v in &mut low[nh.max(1)..nl] {
        *v += tail;
    }
}

/// Inverse reversible 5/3 transform of one line.
pub fn inv_53(x: &mut [i32], scratch: &mut Vec<i32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    let nl = low_len(n);
    let nh = high_len(n);
    {
        let (low, high) = x.split_at_mut(nl);
        // Undo update.
        low[0] -= (high[0] + high[0] + 2) >> 2;
        rowops::unupdate53(&mut low[1..nh], &high[..nh - 1], &high[1..]);
        let tail = (high[nh - 1] + high[nh - 1] + 2) >> 2;
        for v in &mut low[nh.max(1)..nl] {
            *v -= tail;
        }
        // Undo predict.
        let bulk = nh.min(nl - 1);
        rowops::unpredict53(&mut high[..bulk], &low[..bulk], &low[1..]);
        for i in bulk..nh {
            high[i] += (low[i] + low[nl - 1]) >> 1;
        }
    }
    scratch.clear();
    scratch.extend_from_slice(x);
    let (low, high) = scratch.split_at(nl);
    rowops::interleave_i32(low, high, x);
}

/// One predict-phase 9/7 step over the split bands:
/// `high[i] += c * (low[i] + low[min(i+1, nl-1)])`.
#[inline]
fn lift_hi(low: &[f32], high: &mut [f32], nl: usize, nh: usize, c: f32) {
    let bulk = nh.min(nl - 1);
    rowops::lift_f32(&mut high[..bulk], &low[..bulk], &low[1..], c);
    for i in bulk..nh {
        high[i] += c * (low[i] + low[nl - 1]);
    }
}

/// One update-phase 9/7 step over the split bands:
/// `low[i] += c * (high[max(i-1,0)] + high[min(i, nh-1)])`.
#[inline]
fn lift_lo(low: &mut [f32], high: &[f32], nl: usize, nh: usize, c: f32) {
    low[0] += c * (high[0] + high[0]);
    rowops::lift_f32(&mut low[1..nh], &high[..nh - 1], &high[1..], c);
    let tail = c * (high[nh - 1] + high[nh - 1]);
    for v in &mut low[nh.max(1)..nl] {
        *v += tail;
    }
}

/// Forward irreversible 9/7 transform of one line (single precision, the
/// representation the paper adopts for the SPE).
pub fn fwd_97(x: &mut [f32], scratch: &mut Vec<f32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    let nl = low_len(n);
    let nh = high_len(n);
    scratch.clear();
    scratch.extend_from_slice(x);
    let (low, high) = x.split_at_mut(nl);
    rowops::deinterleave_f32(scratch, low, high);
    lift_hi(low, high, nl, nh, ALPHA);
    lift_lo(low, high, nl, nh, BETA);
    lift_hi(low, high, nl, nh, GAMMA);
    lift_lo(low, high, nl, nh, DELTA);
    rowops::scale_f32(low, INV_K);
    rowops::scale_f32(high, K);
}

/// Inverse irreversible 9/7 transform of one line.
pub fn inv_97(x: &mut [f32], scratch: &mut Vec<f32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    let nl = low_len(n);
    let nh = high_len(n);
    {
        let (low, high) = x.split_at_mut(nl);
        rowops::scale_f32(low, K);
        rowops::scale_f32(high, INV_K);
        lift_lo(low, high, nl, nh, -DELTA);
        lift_hi(low, high, nl, nh, -GAMMA);
        lift_lo(low, high, nl, nh, -BETA);
        lift_hi(low, high, nl, nh, -ALPHA);
    }
    scratch.clear();
    scratch.extend_from_slice(x);
    let (low, high) = scratch.split_at(nl);
    rowops::interleave_f32(low, high, x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_rules() {
        assert_eq!(mirror(-1, 8), 1);
        assert_eq!(mirror(8, 8), 6);
        assert_eq!(mirror(3, 8), 3);
        assert_eq!(mirror(0, 1), 0);
        assert_eq!(mirror(-1, 2), 1);
        assert_eq!(mirror(2, 2), 0);
    }

    #[test]
    fn fwd53_known_answer_constant_signal() {
        // A constant signal has zero high band and unchanged low band.
        let mut x = vec![7i32; 10];
        let mut s = Vec::new();
        fwd_53(&mut x, &mut s);
        assert_eq!(&x[..5], &[7; 5]);
        assert_eq!(&x[5..], &[0; 5]);
    }

    #[test]
    fn fwd53_known_answer_ramp() {
        // Ramp 0..8: predict makes every high sample 0 except the mirrored
        // tail; update adds the small correction to the lows.
        let mut x: Vec<i32> = (0..8).collect();
        let mut s = Vec::new();
        fwd_53(&mut x, &mut s);
        // highs: x1-((x0+x2)/2)=0, 0, 0, x7-((x6+x6mirror)/2)=7-6=1
        assert_eq!(&x[4..], &[0, 0, 0, 1]);
        // lows: x0+(h0*2+2)/4 = 0+0=0; x2,x4 unchanged (+0); x6 += (0+1+2)/4=0
        assert_eq!(&x[..4], &[0, 2, 4, 6]);
    }

    #[test]
    fn roundtrip_53_various_lengths() {
        let mut s = Vec::new();
        for n in [1usize, 2, 3, 4, 5, 7, 8, 16, 17, 64, 101] {
            let orig: Vec<i32> = (0..n)
                .map(|i| ((i * 2654435761) % 511) as i32 - 255)
                .collect();
            let mut x = orig.clone();
            fwd_53(&mut x, &mut s);
            inv_53(&mut x, &mut s);
            assert_eq!(x, orig, "n={n}");
        }
    }

    #[test]
    fn roundtrip_97_various_lengths() {
        let mut s = Vec::new();
        for n in [1usize, 2, 3, 4, 5, 8, 16, 33, 100] {
            let orig: Vec<f32> = (0..n)
                .map(|i| (((i * 2654435761) % 511) as f32) - 255.0)
                .collect();
            let mut x = orig.clone();
            fwd_97(&mut x, &mut s);
            inv_97(&mut x, &mut s);
            for (a, b) in x.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-2, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fwd97_dc_gain_is_one() {
        let mut x = vec![100.0f32; 64];
        let mut s = Vec::new();
        fwd_97(&mut x, &mut s);
        for &v in &x[..32] {
            assert!((v - 100.0).abs() < 0.05, "low {v}");
        }
        for &v in &x[32..] {
            assert!(v.abs() < 0.05, "high {v}");
        }
    }

    #[test]
    fn white_noise_energy_gain_matches_filter_norms() {
        // The JPEG2000 normalization (low DC gain 1, high Nyquist gain 2) is
        // NOT orthonormal — per-band L2 gains are compensated later by the
        // quantizer. On white noise the energy gain equals
        // (|h_lo|^2 + |h_hi|^2) / 2, which for these filters is ~1.7.
        let hash = |i: u32| {
            let mut v = i.wrapping_mul(0x9E37_79B1);
            v ^= v >> 16;
            v = v.wrapping_mul(0x85EB_CA6B);
            v ^= v >> 13;
            v
        };
        let mut x: Vec<f32> = (0..4096u32)
            .map(|i| hash(i) as f32 / u32::MAX as f32 - 0.5)
            .collect();
        let e0: f32 = x.iter().map(|v| v * v).sum();
        let mut s = Vec::new();
        fwd_97(&mut x, &mut s);
        let e1: f32 = x.iter().map(|v| v * v).sum();
        let expected = (crate::conv::ANALYSIS_LO.iter().map(|c| c * c).sum::<f32>()
            + crate::conv::ANALYSIS_HI.iter().map(|c| c * c).sum::<f32>())
            / 2.0;
        assert!(
            (e1 / e0 - expected).abs() < 0.1 * expected,
            "energy ratio {} expected {expected}",
            e1 / e0
        );
    }

    #[test]
    fn deinterleave_interleave_inverse() {
        for n in [2usize, 3, 9, 10] {
            let orig: Vec<i32> = (0..n as i32).collect();
            let nl = low_len(n);
            let mut low = vec![0; nl];
            let mut high = vec![0; n - nl];
            rowops::deinterleave_i32(&orig, &mut low, &mut high);
            let mut back = vec![0; n];
            rowops::interleave_i32(&low, &high, &mut back);
            assert_eq!(back, orig);
        }
    }

    #[test]
    fn fwd53_matches_interleaved_mirror_reference() {
        // The clamped-index split-band loops must reproduce the textbook
        // interleaved stencil with whole-sample symmetric extension exactly.
        for n in 2..=33usize {
            let orig: Vec<i32> = (0..n)
                .map(|i| ((i * 2654435761) % 521) as i32 - 260)
                .collect();
            // Reference: stride-2 loops over the interleaved signal.
            let mut r = orig.clone();
            let mut k = 1;
            while k < n {
                let a = r[mirror(k as isize - 1, n)];
                let b = r[mirror(k as isize + 1, n)];
                r[k] -= (a + b) >> 1;
                k += 2;
            }
            let mut k = 0;
            while k < n {
                let a = r[mirror(k as isize - 1, n)];
                let b = r[mirror(k as isize + 1, n)];
                r[k] += (a + b + 2) >> 2;
                k += 2;
            }
            let nl = low_len(n);
            let mut want = vec![0; n];
            let (lo, hi) = want.split_at_mut(nl);
            rowops::scalar::deinterleave_i32(&r, lo, hi);

            let mut got = orig.clone();
            let mut s = Vec::new();
            fwd_53(&mut got, &mut s);
            assert_eq!(got, want, "n={n}");
        }
    }
}
