//! 1-D lifting transforms on contiguous signals.
//!
//! These are the reference semantics for everything else in the crate: the
//! vertical variants and the convolution baseline are tested against them.
//!
//! Convention: input is the interleaved signal `x[0..n]` (even indices are
//! the low-pass phase); output is *deinterleaved in place* — low band in
//! `x[0..low_len(n)]`, high band in `x[low_len(n)..n]`. Boundary handling is
//! whole-sample symmetric extension (`x[-1] = x[1]`, `x[n] = x[n-2]`).

use crate::consts::{ALPHA, BETA, DELTA, GAMMA, INV_K, K};
use crate::{high_len, low_len};

/// Symmetric extension of index `i` (as isize) into `0..n`.
#[inline]
fn mirror(i: isize, n: usize) -> usize {
    let n = n as isize;
    debug_assert!(n >= 1);
    let mut i = i;
    // One reflection suffices for the lifting stencils used here (|i| < 2n).
    if i < 0 {
        i = -i;
    }
    if i >= n {
        i = 2 * (n - 1) - i;
    }
    debug_assert!((0..n).contains(&i));
    i as usize
}

/// Deinterleave `x` (even samples first) using `scratch`.
fn deinterleave<T: Copy>(x: &mut [T], scratch: &mut Vec<T>) {
    let n = x.len();
    scratch.clear();
    scratch.extend_from_slice(x);
    let nl = low_len(n);
    for i in 0..nl {
        x[i] = scratch[2 * i];
    }
    for i in 0..high_len(n) {
        x[nl + i] = scratch[2 * i + 1];
    }
}

/// Interleave `x` (low band first) back to natural order using `scratch`.
fn interleave<T: Copy>(x: &mut [T], scratch: &mut Vec<T>) {
    let n = x.len();
    scratch.clear();
    scratch.extend_from_slice(x);
    let nl = low_len(n);
    for i in 0..nl {
        x[2 * i] = scratch[i];
    }
    for i in 0..high_len(n) {
        x[2 * i + 1] = scratch[nl + i];
    }
}

/// Forward reversible 5/3 transform of one line.
pub fn fwd_53(x: &mut [i32], scratch: &mut Vec<i32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    // Predict (high): x[k] -= floor((x[k-1] + x[k+1]) / 2) for odd k.
    let mut k = 1;
    while k < n {
        let a = x[mirror(k as isize - 1, n)];
        let b = x[mirror(k as isize + 1, n)];
        x[k] -= (a + b) >> 1;
        k += 2;
    }
    // Update (low): x[k] += floor((x[k-1] + x[k+1] + 2) / 4) for even k.
    let mut k = 0;
    while k < n {
        let a = x[mirror(k as isize - 1, n)];
        let b = x[mirror(k as isize + 1, n)];
        x[k] += (a + b + 2) >> 2;
        k += 2;
    }
    deinterleave(x, scratch);
}

/// Inverse reversible 5/3 transform of one line.
pub fn inv_53(x: &mut [i32], scratch: &mut Vec<i32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    interleave(x, scratch);
    // Undo update.
    let mut k = 0;
    while k < n {
        let a = x[mirror(k as isize - 1, n)];
        let b = x[mirror(k as isize + 1, n)];
        x[k] -= (a + b + 2) >> 2;
        k += 2;
    }
    // Undo predict.
    let mut k = 1;
    while k < n {
        let a = x[mirror(k as isize - 1, n)];
        let b = x[mirror(k as isize + 1, n)];
        x[k] += (a + b) >> 1;
        k += 2;
    }
}

#[inline]
fn lift_pass(x: &mut [f32], phase: usize, c: f32) {
    let n = x.len();
    let mut k = phase;
    while k < n {
        let a = x[mirror(k as isize - 1, n)];
        let b = x[mirror(k as isize + 1, n)];
        x[k] += c * (a + b);
        k += 2;
    }
}

/// Forward irreversible 9/7 transform of one line (single precision, the
/// representation the paper adopts for the SPE).
pub fn fwd_97(x: &mut [f32], scratch: &mut Vec<f32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    lift_pass(x, 1, ALPHA);
    lift_pass(x, 0, BETA);
    lift_pass(x, 1, GAMMA);
    lift_pass(x, 0, DELTA);
    let mut k = 0;
    while k < n {
        x[k] *= INV_K;
        k += 2;
    }
    let mut k = 1;
    while k < n {
        x[k] *= K;
        k += 2;
    }
    deinterleave(x, scratch);
}

/// Inverse irreversible 9/7 transform of one line.
pub fn inv_97(x: &mut [f32], scratch: &mut Vec<f32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    interleave(x, scratch);
    let mut k = 0;
    while k < n {
        x[k] *= K;
        k += 2;
    }
    let mut k = 1;
    while k < n {
        x[k] *= INV_K;
        k += 2;
    }
    lift_pass(x, 0, -DELTA);
    lift_pass(x, 1, -GAMMA);
    lift_pass(x, 0, -BETA);
    lift_pass(x, 1, -ALPHA);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_rules() {
        assert_eq!(mirror(-1, 8), 1);
        assert_eq!(mirror(8, 8), 6);
        assert_eq!(mirror(3, 8), 3);
        assert_eq!(mirror(0, 1), 0);
        assert_eq!(mirror(-1, 2), 1);
        assert_eq!(mirror(2, 2), 0);
    }

    #[test]
    fn fwd53_known_answer_constant_signal() {
        // A constant signal has zero high band and unchanged low band.
        let mut x = vec![7i32; 10];
        let mut s = Vec::new();
        fwd_53(&mut x, &mut s);
        assert_eq!(&x[..5], &[7; 5]);
        assert_eq!(&x[5..], &[0; 5]);
    }

    #[test]
    fn fwd53_known_answer_ramp() {
        // Ramp 0..8: predict makes every high sample 0 except the mirrored
        // tail; update adds the small correction to the lows.
        let mut x: Vec<i32> = (0..8).collect();
        let mut s = Vec::new();
        fwd_53(&mut x, &mut s);
        // highs: x1-((x0+x2)/2)=0, 0, 0, x7-((x6+x6mirror)/2)=7-6=1
        assert_eq!(&x[4..], &[0, 0, 0, 1]);
        // lows: x0+(h0*2+2)/4 = 0+0=0; x2,x4 unchanged (+0); x6 += (0+1+2)/4=0
        assert_eq!(&x[..4], &[0, 2, 4, 6]);
    }

    #[test]
    fn roundtrip_53_various_lengths() {
        let mut s = Vec::new();
        for n in [1usize, 2, 3, 4, 5, 7, 8, 16, 17, 64, 101] {
            let orig: Vec<i32> = (0..n)
                .map(|i| ((i * 2654435761) % 511) as i32 - 255)
                .collect();
            let mut x = orig.clone();
            fwd_53(&mut x, &mut s);
            inv_53(&mut x, &mut s);
            assert_eq!(x, orig, "n={n}");
        }
    }

    #[test]
    fn roundtrip_97_various_lengths() {
        let mut s = Vec::new();
        for n in [1usize, 2, 3, 4, 5, 8, 16, 33, 100] {
            let orig: Vec<f32> = (0..n)
                .map(|i| (((i * 2654435761) % 511) as f32) - 255.0)
                .collect();
            let mut x = orig.clone();
            fwd_97(&mut x, &mut s);
            inv_97(&mut x, &mut s);
            for (a, b) in x.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-2, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fwd97_dc_gain_is_one() {
        let mut x = vec![100.0f32; 64];
        let mut s = Vec::new();
        fwd_97(&mut x, &mut s);
        for &v in &x[..32] {
            assert!((v - 100.0).abs() < 0.05, "low {v}");
        }
        for &v in &x[32..] {
            assert!(v.abs() < 0.05, "high {v}");
        }
    }

    #[test]
    fn white_noise_energy_gain_matches_filter_norms() {
        // The JPEG2000 normalization (low DC gain 1, high Nyquist gain 2) is
        // NOT orthonormal — per-band L2 gains are compensated later by the
        // quantizer. On white noise the energy gain equals
        // (|h_lo|^2 + |h_hi|^2) / 2, which for these filters is ~1.7.
        let hash = |i: u32| {
            let mut v = i.wrapping_mul(0x9E37_79B1);
            v ^= v >> 16;
            v = v.wrapping_mul(0x85EB_CA6B);
            v ^= v >> 13;
            v
        };
        let mut x: Vec<f32> = (0..4096u32)
            .map(|i| hash(i) as f32 / u32::MAX as f32 - 0.5)
            .collect();
        let e0: f32 = x.iter().map(|v| v * v).sum();
        let mut s = Vec::new();
        fwd_97(&mut x, &mut s);
        let e1: f32 = x.iter().map(|v| v * v).sum();
        let expected = (crate::conv::ANALYSIS_LO.iter().map(|c| c * c).sum::<f32>()
            + crate::conv::ANALYSIS_HI.iter().map(|c| c * c).sum::<f32>())
            / 2.0;
        assert!(
            (e1 / e0 - expected).abs() < 0.1 * expected,
            "energy ratio {} expected {expected}",
            e1 / e0
        );
    }

    #[test]
    fn deinterleave_interleave_inverse() {
        let mut s = Vec::new();
        for n in [2usize, 3, 9, 10] {
            let orig: Vec<i32> = (0..n as i32).collect();
            let mut x = orig.clone();
            deinterleave(&mut x, &mut s);
            interleave(&mut x, &mut s);
            assert_eq!(x, orig);
        }
    }
}
