//! Multi-level 2-D transform and subband geometry.
//!
//! Per resolution level: vertical filtering first, then horizontal (the
//! paper's order, Section 3.1). After both, the region holds the standard
//! quad layout — LL top-left, HL top-right, LH bottom-left, HH bottom-right
//! — and the next level recurses on the LL quadrant.

use crate::rowops::Region;
use crate::vertical::{self, VerticalVariant};
use crate::{high_len, horizontal, low_len};
use xpart::AlignedPlane;

/// Subband orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// Low-low (only at the deepest level).
    LL,
    /// Horizontal high-pass (top-right quadrant).
    HL,
    /// Vertical high-pass (bottom-left quadrant).
    LH,
    /// Diagonal (bottom-right quadrant).
    HH,
}

impl Band {
    /// log2 subband gain of the reversible 5/3 path (JPEG2000 Table E.1):
    /// used to size the effective dynamic range per band.
    pub fn gain_log2(self) -> u8 {
        match self {
            Band::LL => 0,
            Band::HL | Band::LH => 1,
            Band::HH => 2,
        }
    }

    /// L2 norm of the 9/7 synthesis basis for this band at decomposition
    /// depth `lev` (1 = finest); see [`crate::norms::l2_norm_97`]. Used to
    /// weight distortion in rate control and to scale quantization steps.
    pub fn l2_gain_97(self, lev: usize) -> f64 {
        crate::norms::l2_norm_97(self, lev)
    }
}

/// One subband rectangle in the transformed plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subband {
    /// Orientation.
    pub band: Band,
    /// Decomposition level this band was produced at (1 = finest/full-res).
    pub level: usize,
    /// Left column in the transformed plane.
    pub x0: usize,
    /// Top row in the transformed plane.
    pub y0: usize,
    /// Width in samples (may be 0 for degenerate extents).
    pub w: usize,
    /// Height in samples.
    pub h: usize,
}

impl Subband {
    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.w * self.h
    }
}

/// Enumerate the subbands of a `levels`-deep Mallat decomposition of a
/// `w x h` plane, deepest LL first, then per level (deep to fine):
/// HL, LH, HH. Degenerate (zero-area) bands are omitted.
pub fn subbands(w: usize, h: usize, levels: usize) -> Vec<Subband> {
    let mut dims = Vec::with_capacity(levels + 1);
    let (mut cw, mut ch) = (w, h);
    dims.push((cw, ch));
    for _ in 0..levels {
        cw = low_len(cw);
        ch = low_len(ch);
        dims.push((cw, ch));
    }
    let mut out = Vec::new();
    let (llw, llh) = dims[levels];
    if llw > 0 && llh > 0 {
        out.push(Subband {
            band: Band::LL,
            level: levels,
            x0: 0,
            y0: 0,
            w: llw,
            h: llh,
        });
    }
    // From deepest produced level down to level 1.
    for lev in (1..=levels).rev() {
        let (pw, ph) = dims[lev - 1]; // extent the level-`lev` transform ran on
        let (lw, lh) = (low_len(pw), low_len(ph));
        let (hw, hh) = (high_len(pw), high_len(ph));
        let bands = [
            (Band::HL, lw, 0, hw, lh),
            (Band::LH, 0, lh, lw, hh),
            (Band::HH, lw, lh, hw, hh),
        ];
        for (band, x0, y0, bw, bh) in bands {
            if bw > 0 && bh > 0 {
                out.push(Subband {
                    band,
                    level: lev,
                    x0,
                    y0,
                    w: bw,
                    h: bh,
                });
            }
        }
    }
    out
}

/// The per-level transform regions, finest first (public so callers can
/// compute reduced-resolution dimensions).
pub fn level_regions(w: usize, h: usize, levels: usize) -> Vec<Region> {
    let (mut cw, mut ch) = (w, h);
    let mut v = Vec::new();
    for _ in 0..levels {
        if cw < 2 && ch < 2 {
            break;
        }
        v.push(Region {
            x0: 0,
            y0: 0,
            w: cw,
            h: ch,
        });
        cw = low_len(cw);
        ch = low_len(ch);
    }
    v
}

/// Forward multi-level reversible 5/3 transform.
pub fn forward_2d_53(plane: &mut AlignedPlane<i32>, levels: usize, variant: VerticalVariant) {
    for r in level_regions(plane.width(), plane.height(), levels) {
        vertical::fwd53_vertical(plane, r, variant);
        horizontal::fwd53_horizontal(plane, r);
    }
}

/// Inverse multi-level reversible 5/3 transform.
pub fn inverse_2d_53(plane: &mut AlignedPlane<i32>, levels: usize) {
    inverse_2d_53_partial(plane, levels, 0)
}

/// Inverse 5/3 skipping the `skip_finest` finest levels: reconstructs the
/// reduced-resolution image in the top-left `level_dims[skip_finest]`
/// region (resolution-progressive decoding).
pub fn inverse_2d_53_partial(plane: &mut AlignedPlane<i32>, levels: usize, skip_finest: usize) {
    let regions = level_regions(plane.width(), plane.height(), levels);
    for r in regions.into_iter().skip(skip_finest).rev() {
        horizontal::inv53_horizontal(plane, r);
        vertical::inv53_vertical(plane, r);
    }
}

/// Forward multi-level irreversible 9/7 transform (f32).
pub fn forward_2d_97(plane: &mut AlignedPlane<f32>, levels: usize, variant: VerticalVariant) {
    for r in level_regions(plane.width(), plane.height(), levels) {
        vertical::fwd97_vertical::<f32>(plane, r, variant);
        horizontal::fwd97_horizontal(plane, r);
    }
}

/// Inverse multi-level irreversible 9/7 transform (f32).
pub fn inverse_2d_97(plane: &mut AlignedPlane<f32>, levels: usize) {
    inverse_2d_97_partial(plane, levels, 0)
}

/// Inverse 9/7 skipping the `skip_finest` finest levels (see
/// [`inverse_2d_53_partial`]).
pub fn inverse_2d_97_partial(plane: &mut AlignedPlane<f32>, levels: usize, skip_finest: usize) {
    let regions = level_regions(plane.width(), plane.height(), levels);
    for r in regions.into_iter().skip(skip_finest).rev() {
        horizontal::inv97_horizontal(plane, r);
        vertical::inv97_vertical::<f32>(plane, r);
    }
}

/// Forward multi-level 9/7 in Q13 fixed point (Jasper's representation; the
/// samples must already be Q13, see [`crate::fixed::to_fixed`]).
pub fn forward_2d_97_fixed(plane: &mut AlignedPlane<i32>, levels: usize, variant: VerticalVariant) {
    for r in level_regions(plane.width(), plane.height(), levels) {
        vertical::fwd97_vertical::<i32>(plane, r, variant);
        horizontal::fwd97_fixed_horizontal(plane, r);
    }
}

/// Inverse multi-level 9/7 in Q13 fixed point.
pub fn inverse_2d_97_fixed(plane: &mut AlignedPlane<i32>, levels: usize) {
    for r in level_regions(plane.width(), plane.height(), levels)
        .into_iter()
        .rev()
    {
        horizontal::inv97_fixed_horizontal(plane, r);
        vertical::inv97_vertical::<i32>(plane, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(w: usize, h: usize) -> AlignedPlane<i32> {
        let mut p = AlignedPlane::<i32>::new(w, h).unwrap();
        let mut x: u32 = (w * 131 + h) as u32 | 1;
        p.for_each_mut(|_, _, v| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((x >> 9) % 256) as i32 - 128;
        });
        p
    }

    #[test]
    fn subband_geometry_64x64_3_levels() {
        let sb = subbands(64, 64, 3);
        assert_eq!(sb.len(), 10);
        assert_eq!(sb[0].band, Band::LL);
        assert_eq!((sb[0].w, sb[0].h), (8, 8));
        // Level 3 bands are 8x8, level 1 bands are 32x32.
        let hh1 = sb
            .iter()
            .find(|s| s.band == Band::HH && s.level == 1)
            .unwrap();
        assert_eq!((hh1.x0, hh1.y0, hh1.w, hh1.h), (32, 32, 32, 32));
        let hl3 = sb
            .iter()
            .find(|s| s.band == Band::HL && s.level == 3)
            .unwrap();
        assert_eq!((hl3.x0, hl3.y0, hl3.w, hl3.h), (8, 0, 8, 8));
        // Subband areas tile the plane exactly.
        let total: usize = sb.iter().map(Subband::samples).sum();
        assert_eq!(total, 64 * 64);
    }

    #[test]
    fn subband_geometry_odd_extents_tile_exactly() {
        for (w, h, l) in [
            (13usize, 9usize, 2usize),
            (7, 7, 3),
            (100, 33, 5),
            (1, 17, 2),
        ] {
            let sb = subbands(w, h, l);
            let total: usize = sb.iter().map(Subband::samples).sum();
            assert_eq!(total, w * h, "{w}x{h} levels {l}");
        }
    }

    #[test]
    fn roundtrip_53_multilevel() {
        for (w, h, l) in [
            (64usize, 64usize, 5usize),
            (13, 9, 2),
            (33, 65, 3),
            (8, 8, 1),
        ] {
            let p0 = make(w, h);
            for variant in [
                VerticalVariant::Separate,
                VerticalVariant::Interleaved,
                VerticalVariant::Merged,
            ] {
                let mut p = p0.clone();
                forward_2d_53(&mut p, l, variant);
                inverse_2d_53(&mut p, l);
                assert_eq!(p.to_dense(), p0.to_dense(), "{variant:?} {w}x{h} l{l}");
            }
        }
    }

    #[test]
    fn roundtrip_97_multilevel() {
        let p0 = make(48, 36).to_f32();
        let mut p = p0.clone();
        forward_2d_97(&mut p, 3, VerticalVariant::Merged);
        inverse_2d_97(&mut p, 3);
        for (g, e) in p.to_dense().iter().zip(p0.to_dense()) {
            assert!((g - e).abs() < 0.05, "{g} vs {e}");
        }
    }

    #[test]
    fn roundtrip_97_fixed_multilevel() {
        let p0 = make(32, 24);
        let q0 = p0.map(crate::fixed::to_fixed);
        let mut q = q0.clone();
        forward_2d_97_fixed(&mut q, 3, VerticalVariant::Merged);
        inverse_2d_97_fixed(&mut q, 3);
        for (g, e) in q.to_dense().iter().zip(p0.to_dense()) {
            let g = crate::fixed::from_fixed(*g);
            assert!((g - e).abs() <= 2, "{g} vs {e}");
        }
    }

    #[test]
    fn variants_agree_multilevel() {
        let p0 = make(40, 28);
        let mut a = p0.clone();
        let mut b = p0.clone();
        let mut c = p0.clone();
        forward_2d_53(&mut a, 3, VerticalVariant::Separate);
        forward_2d_53(&mut b, 3, VerticalVariant::Interleaved);
        forward_2d_53(&mut c, 3, VerticalVariant::Merged);
        assert_eq!(a.to_dense(), b.to_dense());
        assert_eq!(a.to_dense(), c.to_dense());
    }

    #[test]
    fn dwt_compacts_energy_into_ll() {
        // A smooth image must concentrate nearly all energy in the LL band.
        let mut p = AlignedPlane::<f32>::new(64, 64).unwrap();
        p.for_each_mut(|x, y, v| {
            *v = ((x as f32) / 9.0).sin() * 50.0 + ((y as f32) / 11.0).cos() * 50.0
        });
        forward_2d_97(&mut p, 3, VerticalVariant::Merged);
        // With the DC-gain-1 normalization a smooth image keeps its
        // amplitude in LL while detail bands stay near zero, so LL should
        // dominate the *transformed* energy.
        let total: f64 = p.to_dense().iter().map(|&v| (v as f64) * (v as f64)).sum();
        let mut ll = 0f64;
        for y in 0..8 {
            for x in 0..8 {
                let v = p.get(x, y) as f64;
                ll += v * v;
            }
        }
        assert!(
            ll / total > 0.9,
            "LL share of transformed energy {}",
            ll / total
        );
    }

    #[test]
    fn partial_inverse_reconstructs_reduced_resolution() {
        // Skipping the finest level must reproduce exactly what a full
        // forward transform of the half-size image's LL would invert to:
        // verify that full forward + partial inverse leaves the top-left
        // quadrant equal to forward-with-one-fewer-levels + full inverse
        // of the nested region.
        let p0 = make(32, 24);
        let mut full = p0.clone();
        forward_2d_53(&mut full, 3, VerticalVariant::Merged);
        let mut partial = full.clone();
        inverse_2d_53_partial(&mut partial, 3, 1);
        // Invert the same coefficients fully, then re-forward one level:
        // the level-1 LL must equal the partial reconstruction's quadrant.
        let mut fullinv = full.clone();
        inverse_2d_53(&mut fullinv, 3);
        let mut refwd = fullinv.clone();
        forward_2d_53(&mut refwd, 1, VerticalVariant::Merged);
        for y in 0..12 {
            for x in 0..16 {
                assert_eq!(partial.get(x, y), refwd.get(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn l2_gains_positive_and_ordered() {
        for lev in 1..=5 {
            assert!(Band::LL.l2_gain_97(lev) >= Band::HH.l2_gain_97(lev));
            assert!(Band::HH.l2_gain_97(lev) > 0.0);
        }
        // Depth-1 LL gain = (1-D low norm)^2 ~ 1.4021^2.
        assert!((Band::LL.l2_gain_97(1) - 1.4021 * 1.4021).abs() < 0.03);
    }
}
