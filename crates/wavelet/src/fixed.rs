//! Jasper-style Q13 fixed-point 9/7 transform.
//!
//! Jasper represents irreversible-path real numbers in 32-bit fixed point
//! with 13 fractional bits to "enhance the performance and the portability"
//! on processors where integer multiply beats floating point. Section 4 of
//! the paper shows this assumption *inverts* on the Cell SPE: the SPU ISA
//! has no 32-bit integer multiply (it is emulated with two 16-bit `mpyh`/
//! `mpyu` multiplies plus adds, Table 1), while single-precision FMA is
//! fully pipelined. We keep the fixed-point path as the ablation baseline.
//!
//! Values are Q13: `value = raw / 2^13`.

use crate::{high_len, low_len};

/// Fractional bits.
pub const FRAC_BITS: u32 = 13;
/// 1.0 in Q13.
pub const ONE: i32 = 1 << FRAC_BITS;

/// Convert an integer sample to Q13.
#[inline]
pub fn to_fixed(v: i32) -> i32 {
    v << FRAC_BITS
}

/// Convert Q13 back to the nearest integer sample.
#[inline]
pub fn from_fixed(v: i32) -> i32 {
    // Round-half-away-from-zero, like Jasper's JAS_FIX_ROUND.
    if v >= 0 {
        (v + (ONE >> 1)) >> FRAC_BITS
    } else {
        -((-v + (ONE >> 1)) >> FRAC_BITS)
    }
}

/// Q13 multiply with 64-bit intermediate (Jasper's JAS_FIX_MUL).
#[inline]
pub fn fix_mul(a: i32, b: i32) -> i32 {
    ((a as i64 * b as i64) >> FRAC_BITS) as i32
}

const fn q13(x: f64) -> i32 {
    // Round-to-nearest at compile time.
    (x * (1u32 << FRAC_BITS) as f64 + if x >= 0.0 { 0.5 } else { -0.5 }) as i32
}

/// 9/7 lifting constants in Q13 (signs as in the float path).
pub const ALPHA_Q13: i32 = q13(-1.586134342059924);
/// First update.
pub const BETA_Q13: i32 = q13(-0.052980118572961);
/// Second predict.
pub const GAMMA_Q13: i32 = q13(0.882911075530934);
/// Second update.
pub const DELTA_Q13: i32 = q13(0.443506852043971);
/// Low-pass scale 1/K.
pub const INV_K_Q13: i32 = q13(1.0 / 1.230174104914001);
/// High-pass scale K.
pub const K_Q13: i32 = q13(1.230174104914001);

/// One predict-phase Q13 step over the split bands (clamped-index form of
/// the interleaved mirror stencil; see `crate::line` for the derivation):
/// `high[i] += fix_mul(c, low[i] + low[min(i+1, nl-1)])`.
#[inline]
fn lift_hi(low: &[i32], high: &mut [i32], nl: usize, nh: usize, c: i32) {
    let bulk = nh.min(nl - 1);
    crate::rowops::lift_q13(&mut high[..bulk], &low[..bulk], &low[1..], c);
    for i in bulk..nh {
        high[i] += fix_mul(c, low[i].wrapping_add(low[nl - 1]));
    }
}

/// One update-phase Q13 step:
/// `low[i] += fix_mul(c, high[max(i-1,0)] + high[min(i, nh-1)])`.
#[inline]
fn lift_lo(low: &mut [i32], high: &[i32], nl: usize, nh: usize, c: i32) {
    low[0] += fix_mul(c, high[0].wrapping_add(high[0]));
    crate::rowops::lift_q13(&mut low[1..nh], &high[..nh - 1], &high[1..], c);
    let tail = fix_mul(c, high[nh - 1].wrapping_add(high[nh - 1]));
    for v in &mut low[nh.max(1)..nl] {
        *v += tail;
    }
}

/// Forward 9/7 on a Q13 line, deinterleaving low/high in place.
pub fn fwd_97_fixed(x: &mut [i32], scratch: &mut Vec<i32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    let nl = low_len(n);
    let nh = high_len(n);
    scratch.clear();
    scratch.extend_from_slice(x);
    let (low, high) = x.split_at_mut(nl);
    crate::rowops::deinterleave_i32(scratch, low, high);
    lift_hi(low, high, nl, nh, ALPHA_Q13);
    lift_lo(low, high, nl, nh, BETA_Q13);
    lift_hi(low, high, nl, nh, GAMMA_Q13);
    lift_lo(low, high, nl, nh, DELTA_Q13);
    crate::rowops::scale_q13(low, INV_K_Q13);
    crate::rowops::scale_q13(high, K_Q13);
}

/// Inverse 9/7 on a Q13 line (low/high halves in, natural order out).
pub fn inv_97_fixed(x: &mut [i32], scratch: &mut Vec<i32>) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    let nl = low_len(n);
    let nh = high_len(n);
    {
        let (low, high) = x.split_at_mut(nl);
        crate::rowops::scale_q13(low, K_Q13);
        crate::rowops::scale_q13(high, INV_K_Q13);
        lift_lo(low, high, nl, nh, -DELTA_Q13);
        lift_hi(low, high, nl, nh, -GAMMA_Q13);
        lift_lo(low, high, nl, nh, -BETA_Q13);
        lift_hi(low, high, nl, nh, -ALPHA_Q13);
    }
    scratch.clear();
    scratch.extend_from_slice(x);
    let (low, high) = scratch.split_at(nl);
    crate::rowops::interleave_i32(low, high, x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q13_constants_are_sane() {
        assert_eq!(to_fixed(1), ONE);
        assert_eq!(from_fixed(ONE), 1);
        assert_eq!(from_fixed(ONE + (ONE >> 1)), 2); // 1.5 rounds away
        assert_eq!(from_fixed(-(ONE + (ONE >> 1))), -2);
        assert!((ALPHA_Q13 as f64 / ONE as f64 + 1.586134342).abs() < 1e-3);
        assert!((K_Q13 as f64 / ONE as f64 - 1.230174105).abs() < 1e-3);
    }

    #[test]
    fn fix_mul_matches_float() {
        let a = to_fixed(3);
        let r = fix_mul(a, GAMMA_Q13);
        let expect = 3.0 * 0.882911075530934;
        assert!((r as f64 / ONE as f64 - expect).abs() < 1e-3);
    }

    #[test]
    fn fixed_roundtrip_close() {
        let mut s = Vec::new();
        for n in [2usize, 5, 16, 33, 128] {
            let orig: Vec<i32> = (0..n)
                .map(|i| ((i * 2654435761) % 511) as i32 - 255)
                .collect();
            let mut x: Vec<i32> = orig.iter().map(|&v| to_fixed(v)).collect();
            fwd_97_fixed(&mut x, &mut s);
            inv_97_fixed(&mut x, &mut s);
            for (i, (&got, &want)) in x.iter().zip(&orig).enumerate() {
                let got = from_fixed(got);
                assert!((got - want).abs() <= 1, "n={n} i={i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn fixed_matches_float_forward() {
        // The Q13 approximation must track the float transform to within the
        // quantization noise floor of the representation.
        let n = 64;
        let orig: Vec<i32> = (0..n).map(|i| ((i * 97) % 251) as i32 - 125).collect();
        let mut xf: Vec<f32> = orig.iter().map(|&v| v as f32).collect();
        let mut xi: Vec<i32> = orig.iter().map(|&v| to_fixed(v)).collect();
        let mut sf = Vec::new();
        let mut si = Vec::new();
        crate::line::fwd_97(&mut xf, &mut sf);
        fwd_97_fixed(&mut xi, &mut si);
        for i in 0..n {
            let fx = xi[i] as f64 / ONE as f64;
            assert!(
                (fx - xf[i] as f64).abs() < 0.25,
                "i={i}: fixed {fx} float {}",
                xf[i]
            );
        }
    }
}
