//! Convolution-based 9/7 analysis — the baseline Muta et al. use.
//!
//! Direct FIR filtering with the CDF 9/7 analysis taps and whole-sample
//! symmetric extension. Produces the same coefficients as the lifting
//! implementation (within floating-point noise) but performs ~2x the
//! arithmetic — the paper credits part of its DWT advantage to "adopting a
//! lifting based scheme instead of a convolution based scheme".

use crate::{high_len, low_len};

/// CDF 9/7 analysis low-pass taps, `h[-4..=4]`.
pub const ANALYSIS_LO: [f32; 9] = [
    0.026_748_757,
    -0.016_864_118,
    -0.078_223_266,
    0.266_864_12,
    0.602_949_f32,
    0.266_864_12,
    -0.078_223_266,
    -0.016_864_118,
    0.026_748_757,
];

/// CDF 9/7 analysis high-pass taps, `g[-3..=3]` (centered on odd samples).
pub const ANALYSIS_HI: [f32; 7] = [
    0.091_271_76,
    -0.057_543_526,
    -0.591_271_77,
    1.115_087_f32,
    -0.591_271_77,
    -0.057_543_526,
    0.091_271_76,
];

#[inline]
fn mirror(i: isize, n: usize) -> usize {
    let n = n as isize;
    let mut i = i;
    while i < 0 || i >= n {
        if i < 0 {
            i = -i;
        }
        if i >= n {
            i = 2 * (n - 1) - i;
        }
    }
    i as usize
}

/// Forward 9/7 by direct convolution: input interleaved, output
/// deinterleaved (low `[0..nl)`, high `[nl..n)`), matching
/// [`crate::line::fwd_97`] up to floating-point noise and the lifting
/// normalization (lifting low = conv low / K... both paths already include
/// the K normalization, so they agree directly).
#[allow(clippy::needless_range_loop)] // index math mirrors the filter eqn
pub fn fwd_97_conv(x: &[f32], out: &mut Vec<f32>) {
    let n = x.len();
    out.clear();
    out.resize(n, 0.0);
    if n <= 1 {
        out.copy_from_slice(x);
        return;
    }
    let nl = low_len(n);
    let nh = high_len(n);
    for i in 0..nl {
        let center = 2 * i as isize;
        let mut acc = 0.0f32;
        for (t, &c) in ANALYSIS_LO.iter().enumerate() {
            let k = center + t as isize - 4;
            acc += c * x[mirror(k, n)];
        }
        out[i] = acc;
    }
    for i in 0..nh {
        let center = 2 * i as isize + 1;
        let mut acc = 0.0f32;
        for (t, &c) in ANALYSIS_HI.iter().enumerate() {
            let k = center + t as isize - 3;
            acc += c * x[mirror(k, n)];
        }
        out[nl + i] = acc;
    }
}

/// Multiplies-and-adds per output sample of the convolution path
/// (9 + 7 taps over 2 outputs). Used by the cost models.
pub fn conv_macs_per_sample() -> f64 {
    (9.0 + 7.0) / 2.0
}

/// Multiplies-and-adds per output sample of the *fused* lifting path, per
/// filter. The fused/blocked kernels perform every lifting step (and, for
/// 9/7, the K/1/K normalization) in one streaming pass, so arithmetic per
/// sample is schedule-independent:
///
/// * 5/3: 2 lifting steps x 2 MACs over 2 outputs = 2 MACs/sample
///   (no scaling pass);
/// * 9/7: 4 lifting steps x 2 MACs + 2 scale multiplies over 2 outputs
///   = 5 MACs/sample.
///
/// `cellsim` stage costs and the `obs::counters` GB/s denominators both
/// divide by these, so they must track the kernels actually shipped.
pub fn lifting_macs_per_sample(filter: crate::Filter) -> f64 {
    match filter {
        crate::Filter::Rev53 => (2.0 * 2.0) / 2.0,
        crate::Filter::Irr97 => (4.0 * 2.0 + 2.0) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line;

    #[test]
    fn taps_have_unit_dc_and_nyquist_gain() {
        let dc: f32 = ANALYSIS_LO.iter().sum();
        assert!((dc - 1.0).abs() < 1e-5, "lo DC {dc}");
        let hi_dc: f32 = ANALYSIS_HI.iter().sum();
        assert!(hi_dc.abs() < 1e-5, "hi DC {hi_dc}");
        let nyq: f32 = ANALYSIS_HI
            .iter()
            .enumerate()
            .map(|(k, &c)| if k % 2 == 0 { -c } else { c })
            .sum();
        assert!((nyq.abs() - 2.0).abs() < 1e-4, "hi Nyquist {nyq}");
    }

    #[test]
    fn convolution_matches_lifting_up_to_normalization() {
        // Lifting output: low = conv_low / K is NOT the case here — both
        // include the K scaling. They must agree within fp noise after
        // accounting for the exact constants.
        let n = 64;
        let x: Vec<f32> = (0..n)
            .map(|i| ((i as f32 * 0.37).sin() * 90.0) + ((i / 7) as f32))
            .collect();
        let mut lifted = x.clone();
        let mut s = Vec::new();
        line::fwd_97(&mut lifted, &mut s);
        let mut conv = Vec::new();
        fwd_97_conv(&x, &mut conv);
        let nl = low_len(n);
        // Determine the per-band ratio empirically on the largest samples —
        // it must be ~1.0 for both bands if normalizations agree.
        for (i, (&c, &l)) in conv.iter().zip(&lifted).enumerate() {
            let band = if i < nl { "low" } else { "high" };
            assert!(
                (c - l).abs() < 0.05 * l.abs().max(1.0),
                "{band} sample {i}: conv {c} vs lifting {l}"
            );
        }
    }

    #[test]
    fn conv_cost_exceeds_lifting_cost() {
        assert!(conv_macs_per_sample() > lifting_macs_per_sample(crate::Filter::Irr97));
        assert!(
            lifting_macs_per_sample(crate::Filter::Irr97)
                > lifting_macs_per_sample(crate::Filter::Rev53)
        );
    }

    #[test]
    fn lifting_macs_track_lift_step_counts() {
        // 5/3 runs 2 lifting steps, 9/7 runs 4 plus the scale pass; one MAC
        // per step per sample pair member.
        assert_eq!(lifting_macs_per_sample(crate::Filter::Rev53), 2.0);
        assert_eq!(lifting_macs_per_sample(crate::Filter::Irr97), 5.0);
    }

    #[test]
    fn conv_single_sample_passthrough() {
        let mut out = Vec::new();
        fwd_97_conv(&[5.0], &mut out);
        assert_eq!(out, vec![5.0]);
    }
}
