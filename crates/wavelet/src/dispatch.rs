//! Runtime kernel dispatch: the single switch between the scalar reference
//! kernels and the explicit-SIMD variants.
//!
//! Every vectorized kernel in the workspace (wavelet row primitives, the
//! deinterleave/interleave shuffles, and the MCT/quantize row kernels in
//! `j2k-core`) consults [`active`] and falls back to the always-compiled
//! scalar path when it returns [`Backend::Scalar`]. Both backends produce
//! byte-identical output — the differential test layer asserts it — so the
//! selection is purely a performance choice.
//!
//! Selection order:
//! 1. a programmatic force ([`force`] / [`force_guard`], used by the
//!    differential tests and by `kernel_bench` to measure both backends),
//! 2. the `J2K_KERNELS` environment variable (`scalar` or `simd`),
//! 3. the default: SIMD wherever the target supports it, scalar otherwise.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Which kernel implementation family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable scalar reference loops (always available).
    Scalar,
    /// Explicit-width SIMD (`core::arch` intrinsics on x86_64).
    Simd,
}

impl Backend {
    /// Stable lowercase name (matches the `J2K_KERNELS` values).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Simd => "simd",
        }
    }
}

const FORCE_NONE: u8 = 0;
const FORCE_SCALAR: u8 = 1;
const FORCE_SIMD: u8 = 2;

static FORCED: AtomicU8 = AtomicU8::new(FORCE_NONE);
static ENV_CHOICE: OnceLock<Backend> = OnceLock::new();

/// Whether this build carries explicit SIMD kernels for the target.
///
/// On `x86_64` the SSE2 baseline is always present, so this is `true`
/// unconditionally; the few kernels that additionally want SSE4.1
/// (`_mm_mul_epi32` for the Q13 64-bit multiply) detect that feature at
/// runtime and fall back to scalar on their own. Other targets run the
/// autovectorization-friendly scalar loops (the row primitives are written
/// as straight-line slice arithmetic precisely so LLVM can vectorize them
/// on NEON and friends without `unsafe`).
#[inline]
pub fn simd_available() -> bool {
    cfg!(target_arch = "x86_64")
}

/// Whether the SSE4.1 subset used by the Q13 kernels is available.
#[inline]
pub fn simd_q13_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static SSE41: OnceLock<bool> = OnceLock::new();
        *SSE41.get_or_init(|| std::arch::is_x86_feature_detected!("sse4.1"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn env_choice() -> Backend {
    *ENV_CHOICE.get_or_init(|| match std::env::var("J2K_KERNELS").as_deref() {
        Ok("scalar") => Backend::Scalar,
        Ok("simd") => {
            if simd_available() {
                Backend::Simd
            } else {
                Backend::Scalar
            }
        }
        Ok(other) => {
            eprintln!("J2K_KERNELS={other:?} not recognised (want scalar|simd); using default");
            default_backend()
        }
        Err(_) => default_backend(),
    })
}

fn default_backend() -> Backend {
    if simd_available() {
        Backend::Simd
    } else {
        Backend::Scalar
    }
}

/// The backend every dispatching kernel should run right now.
#[inline]
pub fn active() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        FORCE_SCALAR => Backend::Scalar,
        FORCE_SIMD => {
            if simd_available() {
                Backend::Simd
            } else {
                Backend::Scalar
            }
        }
        _ => env_choice(),
    }
}

/// Force a backend process-wide (`None` restores env/default selection).
///
/// Prefer [`force_guard`] in tests; this raw setter exists for binaries
/// (e.g. `kernel_bench`) that switch backends between whole runs.
pub fn force(backend: Option<Backend>) {
    let v = match backend {
        None => FORCE_NONE,
        Some(Backend::Scalar) => FORCE_SCALAR,
        Some(Backend::Simd) => FORCE_SIMD,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// RAII force: holds a process-wide lock so concurrent tests that force
/// different backends serialize instead of interleaving, and restores the
/// previous force state on drop.
pub struct ForceGuard {
    prev: u8,
    _lock: MutexGuard<'static, ()>,
}

static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// Force `backend` for the lifetime of the returned guard.
pub fn force_guard(backend: Backend) -> ForceGuard {
    let lock = FORCE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = FORCED.load(Ordering::Relaxed);
    force(Some(backend));
    ForceGuard { prev, _lock: lock }
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        FORCED.store(self.prev, Ordering::Relaxed);
    }
}

/// Human-readable description of the active selection (for bench notes).
pub fn description() -> String {
    let b = active();
    let forced = FORCED.load(Ordering::Relaxed) != FORCE_NONE;
    let q13 = if b == Backend::Simd && simd_q13_available() {
        "+sse4.1-q13"
    } else {
        ""
    };
    format!(
        "{}{}{}",
        b.name(),
        q13,
        if forced { " (forced)" } else { "" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_guard_restores_previous_state() {
        let before = active();
        {
            let _g = force_guard(Backend::Scalar);
            assert_eq!(active(), Backend::Scalar);
        }
        assert_eq!(active(), before);
    }

    #[test]
    fn nested_force_restores_outer_force() {
        let _g = force_guard(Backend::Scalar);
        {
            // Re-entrant use from one thread would deadlock on the mutex, so
            // exercise the raw setter for the nested level instead.
            force(Some(Backend::Simd));
            if simd_available() {
                assert_eq!(active(), Backend::Simd);
            }
            force(Some(Backend::Scalar));
        }
        assert_eq!(active(), Backend::Scalar);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Simd.name(), "simd");
        assert!(!description().is_empty());
    }

    #[test]
    fn x86_64_always_has_simd() {
        #[cfg(target_arch = "x86_64")]
        assert!(simd_available());
    }
}
