//! Explicit-width SIMD row kernels (x86_64).
//!
//! Each function computes *exactly* the arithmetic of its scalar twin in
//! [`crate::rowops`] — same operands, same operation order per element — so
//! outputs are byte-identical (asserted by the differential test layer):
//!
//! * i32 adds/subtracts/shifts are exact in both forms (wrapping two's
//!   complement; the scalar release build wraps identically).
//! * f32 lifting uses only `mul`/`add` in the same per-element order; Rust
//!   never contracts `a + c * b` into an FMA, and neither do these
//!   intrinsics, so results are IEEE-identical lane by lane.
//! * Q13 lifting needs the 32×32→64 signed multiply (`_mm_mul_epi32`,
//!   SSE4.1). `(a*b) >> 13` keeps product bits 13..45, which are identical
//!   under logical and arithmetic 64-bit shifts, so `_mm_srli_epi64` is
//!   exact. Callers must gate on [`crate::dispatch::simd_q13_available`].
//!
//! Every loop handles the tail (`len % 4 != 0`) with the scalar expression,
//! and loads are unaligned (`loadu`) so misaligned region base pointers —
//! odd `x0` offsets into a plane — are handled without a peel loop.
#![cfg(target_arch = "x86_64")]

use crate::fixed::FRAC_BITS;
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

#[inline]
unsafe fn load(p: *const i32) -> __m128i {
    _mm_loadu_si128(p as *const __m128i)
}

#[inline]
unsafe fn store(p: *mut i32, v: __m128i) {
    _mm_storeu_si128(p as *mut __m128i, v)
}

/// `dst -= (a + b) >> 1` (5/3 predict).
pub fn predict53(dst: &mut [i32], a: &[i32], b: &[i32]) {
    let n = dst.len().min(a.len()).min(b.len());
    // SAFETY: all accesses are `< n`, within each slice.
    unsafe {
        let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let s = _mm_srai_epi32::<1>(_mm_add_epi32(load(ap.add(i)), load(bp.add(i))));
            store(dp.add(i), _mm_sub_epi32(load(dp.add(i)), s));
            i += 4;
        }
        while i < n {
            *dp.add(i) -= (*ap.add(i) + *bp.add(i)) >> 1;
            i += 1;
        }
    }
}

/// `dst += (a + b) >> 1` (5/3 predict undo).
pub fn unpredict53(dst: &mut [i32], a: &[i32], b: &[i32]) {
    let n = dst.len().min(a.len()).min(b.len());
    // SAFETY: all accesses are `< n`, within each slice.
    unsafe {
        let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let s = _mm_srai_epi32::<1>(_mm_add_epi32(load(ap.add(i)), load(bp.add(i))));
            store(dp.add(i), _mm_add_epi32(load(dp.add(i)), s));
            i += 4;
        }
        while i < n {
            *dp.add(i) += (*ap.add(i) + *bp.add(i)) >> 1;
            i += 1;
        }
    }
}

#[inline]
unsafe fn update_term(a: __m128i, b: __m128i) -> __m128i {
    _mm_srai_epi32::<2>(_mm_add_epi32(_mm_add_epi32(a, b), _mm_set1_epi32(2)))
}

/// `dst += (a + b + 2) >> 2` (5/3 update).
pub fn update53(dst: &mut [i32], a: &[i32], b: &[i32]) {
    let n = dst.len().min(a.len()).min(b.len());
    // SAFETY: all accesses are `< n`, within each slice.
    unsafe {
        let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let s = update_term(load(ap.add(i)), load(bp.add(i)));
            store(dp.add(i), _mm_add_epi32(load(dp.add(i)), s));
            i += 4;
        }
        while i < n {
            *dp.add(i) += (*ap.add(i) + *bp.add(i) + 2) >> 2;
            i += 1;
        }
    }
}

/// `dst -= (a + b + 2) >> 2` (5/3 update undo).
pub fn unupdate53(dst: &mut [i32], a: &[i32], b: &[i32]) {
    let n = dst.len().min(a.len()).min(b.len());
    // SAFETY: all accesses are `< n`, within each slice.
    unsafe {
        let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let s = update_term(load(ap.add(i)), load(bp.add(i)));
            store(dp.add(i), _mm_sub_epi32(load(dp.add(i)), s));
            i += 4;
        }
        while i < n {
            *dp.add(i) -= (*ap.add(i) + *bp.add(i) + 2) >> 2;
            i += 1;
        }
    }
}

/// `out = center - ((a + b) >> 1)`.
pub fn predict53_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32]) {
    let n = out.len().min(center.len()).min(a.len()).min(b.len());
    // SAFETY: all accesses are `< n`, within each slice.
    unsafe {
        let (op, cp, ap, bp) = (out.as_mut_ptr(), center.as_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let s = _mm_srai_epi32::<1>(_mm_add_epi32(load(ap.add(i)), load(bp.add(i))));
            store(op.add(i), _mm_sub_epi32(load(cp.add(i)), s));
            i += 4;
        }
        while i < n {
            *op.add(i) = *cp.add(i) - ((*ap.add(i) + *bp.add(i)) >> 1);
            i += 1;
        }
    }
}

/// `out = center + ((a + b + 2) >> 2)`.
pub fn update53_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32]) {
    let n = out.len().min(center.len()).min(a.len()).min(b.len());
    // SAFETY: all accesses are `< n`, within each slice.
    unsafe {
        let (op, cp, ap, bp) = (out.as_mut_ptr(), center.as_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let s = update_term(load(ap.add(i)), load(bp.add(i)));
            store(op.add(i), _mm_add_epi32(load(cp.add(i)), s));
            i += 4;
        }
        while i < n {
            *op.add(i) = *cp.add(i) + ((*ap.add(i) + *bp.add(i) + 2) >> 2);
            i += 1;
        }
    }
}

/// `dst += c * (a + b)` (9/7 lifting step, f32).
pub fn lift_f32(dst: &mut [f32], a: &[f32], b: &[f32], c: f32) {
    let n = dst.len().min(a.len()).min(b.len());
    // SAFETY: all accesses are `< n`, within each slice.
    unsafe {
        let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let vc = _mm_set1_ps(c);
        let mut i = 0;
        while i + 4 <= n {
            let s = _mm_mul_ps(
                vc,
                _mm_add_ps(_mm_loadu_ps(ap.add(i)), _mm_loadu_ps(bp.add(i))),
            );
            _mm_storeu_ps(dp.add(i), _mm_add_ps(_mm_loadu_ps(dp.add(i)), s));
            i += 4;
        }
        while i < n {
            *dp.add(i) += c * (*ap.add(i) + *bp.add(i));
            i += 1;
        }
    }
}

/// `out = center + c * (a + b)`.
pub fn lift_f32_into(out: &mut [f32], center: &[f32], a: &[f32], b: &[f32], c: f32) {
    let n = out.len().min(center.len()).min(a.len()).min(b.len());
    // SAFETY: all accesses are `< n`, within each slice.
    unsafe {
        let (op, cp, ap, bp) = (out.as_mut_ptr(), center.as_ptr(), a.as_ptr(), b.as_ptr());
        let vc = _mm_set1_ps(c);
        let mut i = 0;
        while i + 4 <= n {
            let s = _mm_mul_ps(
                vc,
                _mm_add_ps(_mm_loadu_ps(ap.add(i)), _mm_loadu_ps(bp.add(i))),
            );
            _mm_storeu_ps(op.add(i), _mm_add_ps(_mm_loadu_ps(cp.add(i)), s));
            i += 4;
        }
        while i < n {
            *op.add(i) = *cp.add(i) + c * (*ap.add(i) + *bp.add(i));
            i += 1;
        }
    }
}

/// `dst *= k`.
pub fn scale_f32(dst: &mut [f32], k: f32) {
    let n = dst.len();
    // SAFETY: all accesses are `< n`.
    unsafe {
        let dp = dst.as_mut_ptr();
        let vk = _mm_set1_ps(k);
        let mut i = 0;
        while i + 4 <= n {
            _mm_storeu_ps(dp.add(i), _mm_mul_ps(_mm_loadu_ps(dp.add(i)), vk));
            i += 4;
        }
        while i < n {
            *dp.add(i) *= k;
            i += 1;
        }
    }
}

/// Four-lane `(a * b) >> 13` with 64-bit intermediates (`fix_mul`).
///
/// `_mm_mul_epi32` multiplies lanes 0/2; lanes 1/3 are shifted down and
/// multiplied separately, then the four 32-bit truncations are repacked.
#[inline]
#[target_feature(enable = "sse4.1")]
unsafe fn fix_mul4(c: __m128i, s: __m128i) -> __m128i {
    let p02 = _mm_mul_epi32(c, s);
    let p13 = _mm_mul_epi32(c, _mm_srli_si128::<4>(s));
    // Product bits 13..45 survive identically under a logical 64-bit shift.
    let r02 = _mm_srli_epi64::<{ FRAC_BITS as i32 }>(p02);
    let r13 = _mm_srli_epi64::<{ FRAC_BITS as i32 }>(p13);
    // [x0, x2, _, _] and [x1, x3, _, _] -> [x0, x1, x2, x3].
    let r02 = _mm_shuffle_epi32::<0b00_00_10_00>(r02);
    let r13 = _mm_shuffle_epi32::<0b00_00_10_00>(r13);
    _mm_unpacklo_epi32(r02, r13)
}

#[target_feature(enable = "sse4.1")]
unsafe fn lift_q13_sse41(dst: &mut [i32], a: &[i32], b: &[i32], c: i32) {
    let n = dst.len().min(a.len()).min(b.len());
    let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let vc = _mm_set1_epi32(c);
    let mut i = 0;
    while i + 4 <= n {
        let s = _mm_add_epi32(load(ap.add(i)), load(bp.add(i)));
        store(dp.add(i), _mm_add_epi32(load(dp.add(i)), fix_mul4(vc, s)));
        i += 4;
    }
    while i < n {
        *dp.add(i) += crate::fixed::fix_mul(c, (*ap.add(i)).wrapping_add(*bp.add(i)));
        i += 1;
    }
}

/// `dst += fix_mul(c, a + b)` (Q13 lifting step). Requires SSE4.1
/// ([`crate::dispatch::simd_q13_available`]); callers fall back to scalar.
pub fn lift_q13(dst: &mut [i32], a: &[i32], b: &[i32], c: i32) {
    debug_assert!(crate::dispatch::simd_q13_available());
    // SAFETY: gated on SSE4.1 by the dispatch layer.
    unsafe { lift_q13_sse41(dst, a, b, c) }
}

#[target_feature(enable = "sse4.1")]
unsafe fn lift_q13_into_sse41(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32], c: i32) {
    let n = out.len().min(center.len()).min(a.len()).min(b.len());
    let (op, cp, ap, bp) = (out.as_mut_ptr(), center.as_ptr(), a.as_ptr(), b.as_ptr());
    let vc = _mm_set1_epi32(c);
    let mut i = 0;
    while i + 4 <= n {
        let s = _mm_add_epi32(load(ap.add(i)), load(bp.add(i)));
        store(op.add(i), _mm_add_epi32(load(cp.add(i)), fix_mul4(vc, s)));
        i += 4;
    }
    while i < n {
        *op.add(i) = *cp.add(i) + crate::fixed::fix_mul(c, (*ap.add(i)).wrapping_add(*bp.add(i)));
        i += 1;
    }
}

/// `out = center + fix_mul(c, a + b)` (Q13). Requires SSE4.1.
pub fn lift_q13_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32], c: i32) {
    debug_assert!(crate::dispatch::simd_q13_available());
    // SAFETY: gated on SSE4.1 by the dispatch layer.
    unsafe { lift_q13_into_sse41(out, center, a, b, c) }
}

#[target_feature(enable = "sse4.1")]
unsafe fn scale_q13_sse41(dst: &mut [i32], k: i32) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let vk = _mm_set1_epi32(k);
    let mut i = 0;
    while i + 4 <= n {
        store(dp.add(i), fix_mul4(vk, load(dp.add(i))));
        i += 4;
    }
    while i < n {
        *dp.add(i) = crate::fixed::fix_mul(*dp.add(i), k);
        i += 1;
    }
}

/// `dst = fix_mul(dst, k)` (Q13). Requires SSE4.1.
pub fn scale_q13(dst: &mut [i32], k: i32) {
    debug_assert!(crate::dispatch::simd_q13_available());
    // SAFETY: gated on SSE4.1 by the dispatch layer.
    unsafe { scale_q13_sse41(dst, k) }
}

/// Split interleaved `src` into `low` (even indices) and `high` (odd).
///
/// `low.len() == src.len() - src.len() / 2`, `high.len() == src.len() / 2`.
pub fn deinterleave_i32(src: &[i32], low: &mut [i32], high: &mut [i32]) {
    let nh = high.len();
    let nl = low.len();
    assert!(nl + nh == src.len() && nl >= nh && nl - nh <= 1);
    // SAFETY: loads reach src[2i+7] with i+4 <= nh, i.e. < 2*nh <= len.
    unsafe {
        let sp = src.as_ptr();
        let (lp, hp) = (low.as_mut_ptr(), high.as_mut_ptr());
        let mut i = 0;
        while i + 4 <= nh {
            let v0 = _mm_castsi128_ps(load(sp.add(2 * i)));
            let v1 = _mm_castsi128_ps(load(sp.add(2 * i + 4)));
            store(
                lp.add(i),
                _mm_castps_si128(_mm_shuffle_ps::<0b10_00_10_00>(v0, v1)),
            );
            store(
                hp.add(i),
                _mm_castps_si128(_mm_shuffle_ps::<0b11_01_11_01>(v0, v1)),
            );
            i += 4;
        }
        while i < nh {
            *lp.add(i) = *sp.add(2 * i);
            *hp.add(i) = *sp.add(2 * i + 1);
            i += 1;
        }
        if nl > nh {
            *lp.add(nl - 1) = *sp.add(2 * (nl - 1));
        }
    }
}

/// Merge `low`/`high` halves back into interleaved `dst`.
pub fn interleave_i32(low: &[i32], high: &[i32], dst: &mut [i32]) {
    let nh = high.len();
    let nl = low.len();
    assert!(nl + nh == dst.len() && nl >= nh && nl - nh <= 1);
    // SAFETY: stores reach dst[2i+7] with i+4 <= nh, i.e. < 2*nh <= len.
    unsafe {
        let dp = dst.as_mut_ptr();
        let (lp, hp) = (low.as_ptr(), high.as_ptr());
        let mut i = 0;
        while i + 4 <= nh {
            let lo4 = load(lp.add(i));
            let hi4 = load(hp.add(i));
            store(dp.add(2 * i), _mm_unpacklo_epi32(lo4, hi4));
            store(dp.add(2 * i + 4), _mm_unpackhi_epi32(lo4, hi4));
            i += 4;
        }
        while i < nh {
            *dp.add(2 * i) = *lp.add(i);
            *dp.add(2 * i + 1) = *hp.add(i);
            i += 1;
        }
        if nl > nh {
            *dp.add(2 * (nl - 1)) = *lp.add(nl - 1);
        }
    }
}

#[inline]
fn as_i32(s: &[f32]) -> &[i32] {
    // SAFETY: f32 and i32 have identical size/alignment; values are only
    // moved, never reinterpreted arithmetically.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const i32, s.len()) }
}

#[inline]
fn as_i32_mut(s: &mut [f32]) -> &mut [i32] {
    // SAFETY: as in `as_i32`, plus exclusive access via `&mut`.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut i32, s.len()) }
}

/// [`deinterleave_i32`] for f32 rows (bit-preserving moves).
pub fn deinterleave_f32(src: &[f32], low: &mut [f32], high: &mut [f32]) {
    deinterleave_i32(as_i32(src), as_i32_mut(low), as_i32_mut(high));
}

/// [`interleave_i32`] for f32 rows (bit-preserving moves).
pub fn interleave_f32(low: &[f32], high: &[f32], dst: &mut [f32]) {
    interleave_i32(as_i32(low), as_i32(high), as_i32_mut(dst));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, seed: i32) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
        let gen = |s: i32| {
            (0..n)
                .map(|i| ((i as i32).wrapping_mul(2654435761u32 as i32) ^ s) % 10007 - 5003)
                .collect::<Vec<i32>>()
        };
        (gen(seed), gen(seed ^ 77), gen(seed ^ 991))
    }

    #[test]
    fn i32_kernels_match_scalar_all_lengths() {
        for n in 0..=19 {
            let (d0, a, b) = vecs(n, 3);
            let mut want = d0.clone();
            for i in 0..n {
                want[i] -= (a[i] + b[i]) >> 1;
            }
            let mut got = d0.clone();
            predict53(&mut got, &a, &b);
            assert_eq!(got, want, "predict n={n}");

            let mut want = d0.clone();
            for i in 0..n {
                want[i] += (a[i] + b[i] + 2) >> 2;
            }
            let mut got = d0.clone();
            update53(&mut got, &a, &b);
            assert_eq!(got, want, "update n={n}");

            let mut got = d0.clone();
            predict53(&mut got, &a, &b);
            unpredict53(&mut got, &a, &b);
            assert_eq!(got, d0, "unpredict n={n}");
            update53(&mut got, &a, &b);
            unupdate53(&mut got, &a, &b);
            assert_eq!(got, d0, "unupdate n={n}");
        }
    }

    #[test]
    fn q13_kernels_match_scalar() {
        if !crate::dispatch::simd_q13_available() {
            return;
        }
        for n in 0..=19 {
            let (d0, a, b) = vecs(n, 9);
            for c in [crate::fixed::ALPHA_Q13, crate::fixed::K_Q13, -12345] {
                let mut want = d0.clone();
                for i in 0..n {
                    want[i] += crate::fixed::fix_mul(c, a[i].wrapping_add(b[i]));
                }
                let mut got = d0.clone();
                lift_q13(&mut got, &a, &b, c);
                assert_eq!(got, want, "lift_q13 n={n} c={c}");

                let mut want = d0.clone();
                for v in want.iter_mut() {
                    *v = crate::fixed::fix_mul(*v, c);
                }
                let mut got = d0.clone();
                scale_q13(&mut got, c);
                assert_eq!(got, want, "scale_q13 n={n} c={c}");
            }
        }
    }

    #[test]
    fn f32_kernels_bit_identical_to_scalar() {
        for n in 0..=19 {
            let (d0, a, b) = vecs(n, 21);
            let df: Vec<f32> = d0.iter().map(|&v| v as f32 * 0.37).collect();
            let af: Vec<f32> = a.iter().map(|&v| v as f32 * 1.13).collect();
            let bf: Vec<f32> = b.iter().map(|&v| v as f32 * -0.71).collect();
            let c = crate::consts::ALPHA;
            let mut want = df.clone();
            for i in 0..n {
                want[i] += c * (af[i] + bf[i]);
            }
            let mut got = df.clone();
            lift_f32(&mut got, &af, &bf, c);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "lift_f32 n={n}"
            );
        }
    }

    #[test]
    fn deinterleave_interleave_roundtrip_all_lengths() {
        for n in 0..=33 {
            let src: Vec<i32> = (0..n as i32).map(|i| i * 3 - 7).collect();
            let nl = crate::low_len(n);
            let mut low = vec![0; nl];
            let mut high = vec![0; n - nl];
            deinterleave_i32(&src, &mut low, &mut high);
            for i in 0..nl {
                assert_eq!(low[i], src[2 * i], "n={n} low {i}");
            }
            for i in 0..n - nl {
                assert_eq!(high[i], src[2 * i + 1], "n={n} high {i}");
            }
            let mut back = vec![0; n];
            interleave_i32(&low, &high, &mut back);
            assert_eq!(back, src, "n={n}");
        }
    }
}
