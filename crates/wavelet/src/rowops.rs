//! Whole-row SIMD-friendly primitives for the vertical filter.
//!
//! The vertical filter processes all columns of a column group in lockstep;
//! each lifting step is an elementwise operation over three rows. These
//! kernels are written as simple slice loops that the compiler
//! auto-vectorizes (the role SPU intrinsics played in the paper's code).

use xpart::AlignedPlane;

/// A rectangular region of a plane (offsets/extents in elements/rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First column.
    pub x0: usize,
    /// First row.
    pub y0: usize,
    /// Width in elements.
    pub w: usize,
    /// Height in rows.
    pub h: usize,
}

impl Region {
    /// Region covering a whole plane.
    pub fn full<T: Copy + Default>(p: &AlignedPlane<T>) -> Self {
        Region {
            x0: 0,
            y0: 0,
            w: p.width(),
            h: p.height(),
        }
    }
}

/// Mutable row-wise view of a plane region; all row indices are
/// region-relative.
///
/// Internally raw-pointer based so that disjoint regions of the *same*
/// plane can be viewed from different threads through [`SharedPlane`]
/// without materializing aliasing `&mut AlignedPlane` borrows. All row
/// accessors bounds-check against the region before forming a slice.
pub struct Rows<'a, T> {
    ptr: *mut T,
    len: usize,
    stride: usize,
    base: usize,
    w: usize,
    h: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<'a, T: Copy + Default> Rows<'a, T> {
    /// Borrow a region of `plane` as rows.
    pub fn new(plane: &'a mut AlignedPlane<T>, r: Region) -> Self {
        assert!(r.x0 + r.w <= plane.width() && r.y0 + r.h <= plane.height());
        let stride = plane.stride();
        let data = plane.as_mut_slice();
        // SAFETY: the region lies within the plane (asserted above) and the
        // `&mut` borrow guarantees exclusive access for 'a.
        unsafe { Rows::from_raw(data.as_mut_ptr(), data.len(), stride, r) }
    }

    /// Build a view over raw plane storage.
    ///
    /// # Safety
    /// `ptr..ptr+len` must be valid plane storage of row stride `stride`
    /// containing the region `r`, and no other live reference may overlap
    /// the elements of `r` for the lifetime `'a`.
    pub(crate) unsafe fn from_raw(ptr: *mut T, len: usize, stride: usize, r: Region) -> Self {
        let base = r.y0 * stride + r.x0;
        assert!(r.h == 0 || base + (r.h - 1) * stride + r.w <= len);
        Rows {
            ptr,
            len,
            stride,
            base,
            w: r.w,
            h: r.h,
            _marker: std::marker::PhantomData,
        }
    }

    /// Region height in rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Region width in elements.
    #[inline]
    pub fn width(&self) -> usize {
        self.w
    }

    #[inline]
    fn offset(&self, y: usize) -> usize {
        assert!(y < self.h);
        let s = self.base + y * self.stride;
        debug_assert!(s + self.w <= self.len);
        s
    }

    /// Shared row `y`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        let s = self.offset(y);
        // SAFETY: the offset is within the storage (constructor invariant
        // plus the bound checks in `offset`), and `&self` prevents any
        // concurrent `&mut` access through this view.
        unsafe { std::slice::from_raw_parts(self.ptr.add(s) as *const T, self.w) }
    }

    /// Mutable row `y`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        let s = self.offset(y);
        // SAFETY: as in `row`, plus `&mut self` gives exclusive access to
        // the region for the returned lifetime.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(s), self.w) }
    }

    /// Reborrow a column range `[x0, x0 + w)` of this view (all rows).
    ///
    /// Used by the cache-blocked vertical filter: the region is processed
    /// one column group at a time so the pipeline's working set fits the
    /// host cache, and columns are independent so the result is
    /// byte-identical to one full-width pass.
    pub fn subcols(&mut self, x0: usize, w: usize) -> Rows<'_, T> {
        assert!(x0 + w <= self.w);
        Rows {
            ptr: self.ptr,
            len: self.len,
            stride: self.stride,
            base: self.base + x0,
            w,
            h: self.h,
            _marker: std::marker::PhantomData,
        }
    }

    /// One mutable destination row plus two shared source rows.
    ///
    /// `ya`/`yb` may coincide with each other (mirror boundaries) but must
    /// differ from `yd`; rows never overlap because `stride >= w`.
    pub fn dst_src2(&mut self, yd: usize, ya: usize, yb: usize) -> (&mut [T], &[T], &[T]) {
        assert!(yd != ya && yd != yb, "destination row aliases a source row");
        let w = self.w;
        let (od, oa, ob) = (self.offset(yd), self.offset(ya), self.offset(yb));
        // SAFETY: the three row ranges are disjoint — each is `w <= stride`
        // elements starting at distinct multiples of `stride` (yd != ya, yd
        // != yb asserted above), and all lie within the storage (`offset`
        // checks). `a` and `b` may alias each other, which is fine for
        // shared references.
        unsafe {
            let d = std::slice::from_raw_parts_mut(self.ptr.add(od), w);
            let a = std::slice::from_raw_parts(self.ptr.add(oa) as *const T, w);
            let b = std::slice::from_raw_parts(self.ptr.add(ob) as *const T, w);
            (d, a, b)
        }
    }
}

/// A plane handle that can be shared across threads so that *disjoint*
/// regions can be filtered concurrently — the host-thread analogue of
/// several SPEs holding DMA windows into the same main-memory array.
///
/// Constructed from an exclusive borrow, so no safe alias can observe the
/// plane while views exist; the unsafe surface is confined to [`rows`],
/// whose contract is that concurrently live views never overlap.
///
/// [`rows`]: SharedPlane::rows
pub struct SharedPlane<'a, T> {
    ptr: *mut T,
    len: usize,
    stride: usize,
    width: usize,
    height: usize,
    _marker: std::marker::PhantomData<&'a mut AlignedPlane<T>>,
}

// SAFETY: the handle owns an exclusive borrow of the plane; access to the
// underlying storage only happens through `rows`, whose safety contract
// requires concurrently live views to cover disjoint regions.
unsafe impl<T: Send> Send for SharedPlane<'_, T> {}
unsafe impl<T: Send> Sync for SharedPlane<'_, T> {}

impl<'a, T: Copy + Default> SharedPlane<'a, T> {
    /// Wrap an exclusively borrowed plane.
    pub fn new(plane: &'a mut AlignedPlane<T>) -> Self {
        let width = plane.width();
        let height = plane.height();
        let stride = plane.stride();
        let data = plane.as_mut_slice();
        SharedPlane {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            stride,
            width,
            height,
            _marker: std::marker::PhantomData,
        }
    }

    /// Plane width in elements.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// View a region of the plane as [`Rows`].
    ///
    /// # Safety
    /// Regions of views that are live at the same time must be pairwise
    /// disjoint (no element may be covered by two live views). The caller
    /// is responsible for that partitioning — e.g. the column chunks of an
    /// `xpart::ChunkPlan` or non-overlapping row bands.
    pub unsafe fn rows(&self, r: Region) -> Rows<'a, T> {
        assert!(r.x0 + r.w <= self.width && r.y0 + r.h <= self.height);
        Rows::from_raw(self.ptr, self.len, self.stride, r)
    }
}

/// Always-compiled scalar reference kernels. The dispatching wrappers below
/// route here when [`crate::dispatch::active`] selects
/// [`crate::dispatch::Backend::Scalar`] (or on targets without explicit
/// SIMD); the differential test layer runs both backends through the same
/// wrappers and asserts byte-identical results.
pub mod scalar {
    /// `dst -= (a + b) >> 1` elementwise (5/3 predict).
    #[inline]
    pub fn predict53(dst: &mut [i32], a: &[i32], b: &[i32]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d -= (x + y) >> 1;
        }
    }

    /// `dst += (a + b) >> 1` elementwise (5/3 predict undo).
    #[inline]
    pub fn unpredict53(dst: &mut [i32], a: &[i32], b: &[i32]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d += (x + y) >> 1;
        }
    }

    /// `dst += (a + b + 2) >> 2` elementwise (5/3 update).
    #[inline]
    pub fn update53(dst: &mut [i32], a: &[i32], b: &[i32]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d += (x + y + 2) >> 2;
        }
    }

    /// `dst -= (a + b + 2) >> 2` elementwise (5/3 update undo).
    #[inline]
    pub fn unupdate53(dst: &mut [i32], a: &[i32], b: &[i32]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d -= (x + y + 2) >> 2;
        }
    }

    /// `out = center - ((a + b) >> 1)` elementwise.
    #[inline]
    pub fn predict53_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32]) {
        for i in 0..out.len() {
            out[i] = center[i] - ((a[i] + b[i]) >> 1);
        }
    }

    /// `out = center + ((a + b + 2) >> 2)` elementwise.
    #[inline]
    pub fn update53_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32]) {
        for i in 0..out.len() {
            out[i] = center[i] + ((a[i] + b[i] + 2) >> 2);
        }
    }

    /// `dst += c * (a + b)` elementwise (9/7 lifting step).
    #[inline]
    pub fn lift_f32(dst: &mut [f32], a: &[f32], b: &[f32], c: f32) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d += c * (x + y);
        }
    }

    /// `out = center + c * (a + b)` elementwise.
    #[inline]
    pub fn lift_f32_into(out: &mut [f32], center: &[f32], a: &[f32], b: &[f32], c: f32) {
        for i in 0..out.len() {
            out[i] = center[i] + c * (a[i] + b[i]);
        }
    }

    /// `dst *= k` elementwise.
    #[inline]
    pub fn scale_f32(dst: &mut [f32], k: f32) {
        for d in dst {
            *d *= k;
        }
    }

    /// `dst += (c * (a + b)) >> 13` elementwise (Q13 lifting step).
    #[inline]
    pub fn lift_q13(dst: &mut [i32], a: &[i32], b: &[i32], c: i32) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d += crate::fixed::fix_mul(c, x.wrapping_add(y));
        }
    }

    /// `out = center + ((c * (a + b)) >> 13)` elementwise.
    #[inline]
    pub fn lift_q13_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32], c: i32) {
        for i in 0..out.len() {
            out[i] = center[i] + crate::fixed::fix_mul(c, a[i].wrapping_add(b[i]));
        }
    }

    /// `dst = (dst * k) >> 13` elementwise.
    #[inline]
    pub fn scale_q13(dst: &mut [i32], k: i32) {
        for d in dst {
            *d = crate::fixed::fix_mul(*d, k);
        }
    }

    /// Split interleaved `src` into `low` (even indices) / `high` (odd).
    #[inline]
    pub fn deinterleave_i32(src: &[i32], low: &mut [i32], high: &mut [i32]) {
        for (i, l) in low.iter_mut().enumerate() {
            *l = src[2 * i];
        }
        for (i, h) in high.iter_mut().enumerate() {
            *h = src[2 * i + 1];
        }
    }

    /// Merge `low`/`high` halves into interleaved `dst`.
    #[inline]
    pub fn interleave_i32(low: &[i32], high: &[i32], dst: &mut [i32]) {
        for (i, &l) in low.iter().enumerate() {
            dst[2 * i] = l;
        }
        for (i, &h) in high.iter().enumerate() {
            dst[2 * i + 1] = h;
        }
    }

    /// See [`deinterleave_i32`].
    #[inline]
    pub fn deinterleave_f32(src: &[f32], low: &mut [f32], high: &mut [f32]) {
        for (i, l) in low.iter_mut().enumerate() {
            *l = src[2 * i];
        }
        for (i, h) in high.iter_mut().enumerate() {
            *h = src[2 * i + 1];
        }
    }

    /// See [`interleave_i32`].
    #[inline]
    pub fn interleave_f32(low: &[f32], high: &[f32], dst: &mut [f32]) {
        for (i, &l) in low.iter().enumerate() {
            dst[2 * i] = l;
        }
        for (i, &h) in high.iter().enumerate() {
            dst[2 * i + 1] = h;
        }
    }
}

/// Expands to a dispatching wrapper: SIMD when the active backend selects
/// it (and the target compiles the `simd` module), scalar otherwise.
macro_rules! dispatched {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* )) => {
        $(#[$doc])*
        #[inline]
        pub fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if crate::dispatch::active() == crate::dispatch::Backend::Simd {
                return crate::simd::$name($($arg),*);
            }
            scalar::$name($($arg),*)
        }
    };
}

/// Same, but the SIMD path additionally needs the SSE4.1 Q13 multiply.
macro_rules! dispatched_q13 {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* )) => {
        $(#[$doc])*
        #[inline]
        pub fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if crate::dispatch::active() == crate::dispatch::Backend::Simd
                && crate::dispatch::simd_q13_available()
            {
                return crate::simd::$name($($arg),*);
            }
            scalar::$name($($arg),*)
        }
    };
}

dispatched! {
    /// `dst -= (a + b) >> 1` elementwise (5/3 predict).
    predict53(dst: &mut [i32], a: &[i32], b: &[i32])
}
dispatched! {
    /// `dst += (a + b) >> 1` elementwise (5/3 predict undo).
    unpredict53(dst: &mut [i32], a: &[i32], b: &[i32])
}
dispatched! {
    /// `dst += (a + b + 2) >> 2` elementwise (5/3 update).
    update53(dst: &mut [i32], a: &[i32], b: &[i32])
}
dispatched! {
    /// `dst -= (a + b + 2) >> 2` elementwise (5/3 update undo).
    unupdate53(dst: &mut [i32], a: &[i32], b: &[i32])
}
dispatched! {
    /// `out = center - ((a + b) >> 1)` elementwise.
    predict53_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32])
}
dispatched! {
    /// `out = center + ((a + b + 2) >> 2)` elementwise.
    update53_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32])
}
dispatched! {
    /// `dst += c * (a + b)` elementwise (9/7 lifting step).
    lift_f32(dst: &mut [f32], a: &[f32], b: &[f32], c: f32)
}
dispatched! {
    /// `out = center + c * (a + b)` elementwise.
    lift_f32_into(out: &mut [f32], center: &[f32], a: &[f32], b: &[f32], c: f32)
}
dispatched! {
    /// `dst *= k` elementwise.
    scale_f32(dst: &mut [f32], k: f32)
}
dispatched_q13! {
    /// `dst += (c * (a + b)) >> 13` elementwise (Q13 lifting step).
    lift_q13(dst: &mut [i32], a: &[i32], b: &[i32], c: i32)
}
dispatched_q13! {
    /// `out = center + ((c * (a + b)) >> 13)` elementwise.
    lift_q13_into(out: &mut [i32], center: &[i32], a: &[i32], b: &[i32], c: i32)
}
dispatched_q13! {
    /// `dst = (dst * k) >> 13` elementwise.
    scale_q13(dst: &mut [i32], k: i32)
}
dispatched! {
    /// Split interleaved `src` into `low` (even indices) / `high` (odd).
    deinterleave_i32(src: &[i32], low: &mut [i32], high: &mut [i32])
}
dispatched! {
    /// Merge `low`/`high` halves into interleaved `dst`.
    interleave_i32(low: &[i32], high: &[i32], dst: &mut [i32])
}
dispatched! {
    /// Split interleaved f32 `src` into `low`/`high` (bit-preserving).
    deinterleave_f32(src: &[f32], low: &mut [f32], high: &mut [f32])
}
dispatched! {
    /// Merge f32 `low`/`high` into interleaved `dst` (bit-preserving).
    interleave_f32(low: &[f32], high: &[f32], dst: &mut [f32])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_full_covers_plane() {
        let p = AlignedPlane::<i32>::new(10, 4).unwrap();
        let r = Region::full(&p);
        assert_eq!((r.x0, r.y0, r.w, r.h), (0, 0, 10, 4));
    }

    #[test]
    fn rows_view_reads_and_writes_subregion() {
        let mut p = AlignedPlane::<i32>::new(8, 4).unwrap();
        p.for_each_mut(|x, y, v| *v = (10 * y + x) as i32);
        let mut rows = Rows::new(
            &mut p,
            Region {
                x0: 2,
                y0: 1,
                w: 3,
                h: 2,
            },
        );
        assert_eq!(rows.row(0), &[12, 13, 14]);
        rows.row_mut(1)[0] = -1;
        assert_eq!(p.get(2, 2), -1);
    }

    #[test]
    fn dst_src2_allows_mirror_aliasing_of_sources() {
        let mut p = AlignedPlane::<i32>::new(4, 3).unwrap();
        p.for_each_mut(|x, y, v| *v = (y * 4 + x) as i32);
        let r = Region::full(&p);
        let mut rows = Rows::new(&mut p, r);
        let (d, a, b) = rows.dst_src2(2, 0, 0);
        assert_eq!(a, b);
        predict53(d, a, b);
        assert_eq!(p.row(2), &[8, 8, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "aliases")]
    fn dst_src2_rejects_dst_aliasing() {
        let mut p = AlignedPlane::<i32>::new(4, 3).unwrap();
        let r = Region::full(&p);
        let mut rows = Rows::new(&mut p, r);
        let _ = rows.dst_src2(1, 1, 0);
    }

    #[test]
    fn predict_update_inverse_pair() {
        let a = vec![3i32, -5, 100, 7];
        let b = vec![9i32, 2, -4, 0];
        let orig = vec![10i32, 20, 30, -40];
        let mut d = orig.clone();
        predict53(&mut d, &a, &b);
        // inverse of predict is adding the same prediction back
        let mut d2 = d.clone();
        for i in 0..4 {
            d2[i] += (a[i] + b[i]) >> 1;
        }
        assert_eq!(d2, orig);
    }

    #[test]
    fn into_forms_match_inplace_forms() {
        let a = vec![1i32, -2, 3, -4];
        let b = vec![5i32, 6, -7, 8];
        let c = vec![9i32, 10, 11, 12];
        let mut inplace = c.clone();
        predict53(&mut inplace, &a, &b);
        let mut out = vec![0i32; 4];
        predict53_into(&mut out, &c, &a, &b);
        assert_eq!(out, inplace);

        let mut inplace = c.clone();
        update53(&mut inplace, &a, &b);
        let mut out = vec![0i32; 4];
        update53_into(&mut out, &c, &a, &b);
        assert_eq!(out, inplace);

        let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let cf: Vec<f32> = c.iter().map(|&v| v as f32).collect();
        let mut inplace = cf.clone();
        lift_f32(&mut inplace, &af, &bf, 0.5);
        let mut out = vec![0f32; 4];
        lift_f32_into(&mut out, &cf, &af, &bf, 0.5);
        assert_eq!(out, inplace);
    }
}
