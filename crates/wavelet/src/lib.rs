//! Discrete wavelet transforms for the JPEG2000-on-Cell reproduction.
//!
//! Implements the two JPEG2000 Part 1 filter banks and the loop-scheduling
//! variants studied in Section 4 of Kang & Bader (ICPP 2008):
//!
//! * **Reversible 5/3** (lossless): integer lifting, exactly invertible.
//! * **Irreversible 9/7** (lossy): four-step lifting in `f32` (the paper's
//!   choice for the Cell SPE) and in Jasper-style Q13 fixed point (the
//!   representation the paper *replaces*), plus a convolution baseline
//!   matching Muta et al.'s approach.
//!
//! The vertical (column) filter comes in three scheduling variants that all
//! produce identical outputs but move different amounts of data — the key
//! trade-off of the paper:
//!
//! | variant | passes over the column group (5/3) | passes (9/7) |
//! |---|---|---|
//! | [`VerticalVariant::Separate`] (Algorithm 1) | split + 2 lifting = 3 | split + 4 lifting + scale = 6 |
//! | [`VerticalVariant::Interleaved`] (Algorithm 2) | split + 1 fused = 2 | split + 1 fused = 2 |
//! | [`VerticalVariant::Merged`] | 1 fused + ½ aux copy = 1.5 | 1 fused + ½ aux copy = 1.5 |
//!
//! `Merged` folds the split step into the fused lifting loop; because the
//! in-place update of the high-pass rows would overwrite not-yet-read input
//! rows, the high half is staged through an auxiliary buffer whose traffic is
//! half the column group ("this halves the amount of data transfer for the
//! splitting step").

pub mod conv;
pub mod dispatch;
pub mod fixed;
pub mod horizontal;
pub mod line;
pub mod norms;
pub mod rowops;
pub mod simd;
pub mod transform2d;
pub mod vertical;

pub use rowops::{Region, Rows, SharedPlane};
pub use transform2d::{
    forward_2d_53, forward_2d_97, inverse_2d_53, inverse_2d_97, level_regions, subbands, Band,
    Subband,
};
pub use vertical::VerticalVariant;

/// Which filter bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Filter {
    /// Reversible Le Gall 5/3 (lossless path).
    Rev53,
    /// Irreversible CDF 9/7 (lossy path).
    Irr97,
}

/// 9/7 lifting constants (JPEG2000 Part 1, Annex F.4.8.2).
pub mod consts {
    /// First predict step.
    pub const ALPHA: f32 = -1.586_134_3;
    /// First update step.
    pub const BETA: f32 = -0.052_980_118;
    /// Second predict step.
    pub const GAMMA: f32 = 0.882_911_1;
    /// Second update step.
    pub const DELTA: f32 = 0.443_506_85;
    /// Scaling constant; low-pass samples scale by `1/K`, high-pass by `K`.
    pub const K: f32 = 1.230_174_1;
    /// `1/K`.
    pub const INV_K: f32 = 1.0 / K;
}

/// Number of low-pass samples produced from an extent of `n`.
#[inline]
pub fn low_len(n: usize) -> usize {
    n - n / 2
}

/// Number of high-pass samples produced from an extent of `n`.
#[inline]
pub fn high_len(n: usize) -> usize {
    n / 2
}

/// Data-movement accounting for one vertical filtering of a `w x h` region,
/// in elements. These analytic counts drive the `cellsim` DMA model; the
/// unit tests pin them against hand-computed values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Elements loaded from main memory (GET).
    pub loads: u64,
    /// Elements stored to main memory (PUT).
    pub stores: u64,
}

impl Traffic {
    /// Total elements moved.
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }

    /// Element-wise sum.
    pub fn add(&self, o: &Traffic) -> Traffic {
        Traffic {
            loads: self.loads + o.loads,
            stores: self.stores + o.stores,
        }
    }
}

/// Analytic DMA traffic of one *vertical* filtering pass over a `w x h`
/// region under the given variant and filter, in elements.
///
/// Each "pass" streams the whole region in and out once (`2*w*h`); the
/// merged variant additionally stages the high half through the auxiliary
/// buffer (`2 * w * h/2` extra: one store to + one load from the buffer).
pub fn vertical_traffic(variant: VerticalVariant, filter: Filter, w: u64, h: u64) -> Traffic {
    let full = w * h;
    let half = w * (h / 2);
    let passes: u64 = match (variant, filter) {
        (VerticalVariant::Separate, Filter::Rev53) => 3, // split + 2 lifting
        (VerticalVariant::Separate, Filter::Irr97) => 6, // split + 4 lifting + scale
        (VerticalVariant::Interleaved, _) => 2,          // split + fused lifting
        (VerticalVariant::Merged, _) => 1,               // fused single loop
    };
    let mut t = Traffic {
        loads: passes * full,
        stores: passes * full,
    };
    if variant == VerticalVariant::Merged {
        // High half staged through the auxiliary buffer and copied back.
        t.loads += half;
        t.stores += half;
    }
    t
}

/// Analytic DMA traffic of one *horizontal* filtering pass (always a single
/// in/out stream of the region: each row is transformed independently in the
/// Local Store).
pub fn horizontal_traffic(w: u64, h: u64) -> Traffic {
    Traffic {
        loads: w * h,
        stores: w * h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_lengths() {
        assert_eq!(low_len(8), 4);
        assert_eq!(high_len(8), 4);
        assert_eq!(low_len(9), 5);
        assert_eq!(high_len(9), 4);
        assert_eq!(low_len(1), 1);
        assert_eq!(high_len(1), 0);
    }

    #[test]
    fn traffic_ratios_match_paper_story() {
        // Lossless: separate/interleaved/merged pass counts 3/2/1.5.
        let sep = vertical_traffic(VerticalVariant::Separate, Filter::Rev53, 100, 64);
        let int = vertical_traffic(VerticalVariant::Interleaved, Filter::Rev53, 100, 64);
        let mer = vertical_traffic(VerticalVariant::Merged, Filter::Rev53, 100, 64);
        assert_eq!(sep.total(), 3 * 2 * 6400);
        assert_eq!(int.total(), 2 * 2 * 6400);
        assert_eq!(mer.total(), 2 * 6400 + 6400); // one pass + aux half both ways
        assert!(mer.total() < int.total());
        // Lossy separate is 6 passes.
        let sep97 = vertical_traffic(VerticalVariant::Separate, Filter::Irr97, 100, 64);
        assert_eq!(sep97.total(), 6 * 2 * 6400);
    }

    #[test]
    fn traffic_add() {
        let a = Traffic {
            loads: 1,
            stores: 2,
        };
        let b = Traffic {
            loads: 10,
            stores: 20,
        };
        assert_eq!(
            a.add(&b),
            Traffic {
                loads: 11,
                stores: 22
            }
        );
    }
}
