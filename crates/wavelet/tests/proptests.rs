//! Property tests: perfect reconstruction and variant equivalence over
//! arbitrary image content and geometry.

use proptest::prelude::*;
use wavelet::rowops::Region;
use wavelet::vertical::VerticalVariant;
use wavelet::{forward_2d_53, forward_2d_97, inverse_2d_53, inverse_2d_97};
use xpart::AlignedPlane;

fn plane_strategy() -> impl Strategy<Value = (AlignedPlane<i32>, usize)> {
    (2usize..48, 2usize..48, 1usize..5, any::<u32>()).prop_map(|(w, h, levels, seed)| {
        let mut p = AlignedPlane::<i32>::new(w, h).unwrap();
        let mut x = seed | 1;
        p.for_each_mut(|_, _, v| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((x >> 7) % 2047) as i32 - 1023; // ~11-bit dynamic range
        });
        (p, levels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dwt53_perfect_reconstruction((p0, levels) in plane_strategy()) {
        for variant in [
            VerticalVariant::Separate,
            VerticalVariant::Interleaved,
            VerticalVariant::Merged,
        ] {
            let mut p = p0.clone();
            forward_2d_53(&mut p, levels, variant);
            inverse_2d_53(&mut p, levels);
            prop_assert_eq!(p.to_dense(), p0.to_dense(), "{:?}", variant);
        }
    }

    #[test]
    fn dwt53_variants_identical((p0, levels) in plane_strategy()) {
        let mut a = p0.clone();
        let mut b = p0.clone();
        let mut c = p0.clone();
        forward_2d_53(&mut a, levels, VerticalVariant::Separate);
        forward_2d_53(&mut b, levels, VerticalVariant::Interleaved);
        forward_2d_53(&mut c, levels, VerticalVariant::Merged);
        prop_assert_eq!(a.to_dense(), b.to_dense());
        prop_assert_eq!(a.to_dense(), c.to_dense());
    }

    #[test]
    fn dwt97_reconstruction_close((p0, levels) in plane_strategy()) {
        let f0 = p0.to_f32();
        let mut f = f0.clone();
        forward_2d_97(&mut f, levels, VerticalVariant::Merged);
        inverse_2d_97(&mut f, levels);
        for (g, e) in f.to_dense().iter().zip(f0.to_dense()) {
            prop_assert!((g - e).abs() < 0.5, "{} vs {}", g, e);
        }
    }

    #[test]
    fn dwt97_variants_bit_identical((p0, levels) in plane_strategy()) {
        let f0 = p0.to_f32();
        let mut a = f0.clone();
        let mut b = f0.clone();
        let mut c = f0.clone();
        forward_2d_97(&mut a, levels, VerticalVariant::Separate);
        forward_2d_97(&mut b, levels, VerticalVariant::Interleaved);
        forward_2d_97(&mut c, levels, VerticalVariant::Merged);
        prop_assert_eq!(a.to_dense(), b.to_dense());
        prop_assert_eq!(a.to_dense(), c.to_dense());
    }

    #[test]
    fn vertical_outside_region_untouched(
        (p0, _) in plane_strategy(),
        fx in 0.0f64..0.5,
        fw in 0.3f64..1.0,
    ) {
        // Column-group processing must never write outside its group.
        let w = p0.width();
        let x0 = ((w as f64 * fx) as usize).min(w - 1);
        let gw = (((w - x0) as f64 * fw) as usize).max(1);
        let region = Region { x0, y0: 0, w: gw, h: p0.height() };
        let mut p = p0.clone();
        wavelet::vertical::fwd53_vertical(&mut p, region, VerticalVariant::Merged);
        for y in 0..p0.height() {
            for x in 0..w {
                if !(x0..x0 + gw).contains(&x) {
                    prop_assert_eq!(p.get(x, y), p0.get(x, y));
                }
            }
        }
    }

    #[test]
    fn column_group_processing_equals_whole_plane(
        (p0, _) in plane_strategy(),
        ngroups in 1usize..5,
    ) {
        // The paper's column grouping: filtering each group independently
        // must equal filtering the whole plane at once.
        let w = p0.width();
        let mut whole = p0.clone();
        wavelet::vertical::fwd53_vertical(
            &mut whole, Region::full(&p0), VerticalVariant::Merged);
        let mut grouped = p0.clone();
        let gw = w.div_ceil(ngroups);
        let mut x0 = 0;
        while x0 < w {
            let g = gw.min(w - x0);
            let region = Region { x0, y0: 0, w: g, h: p0.height() };
            wavelet::vertical::fwd53_vertical(&mut grouped, region, VerticalVariant::Merged);
            x0 += g;
        }
        prop_assert_eq!(grouped.to_dense(), whole.to_dense());
    }
}
