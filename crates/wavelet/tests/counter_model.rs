//! Cost-model honesty checks: the analytic traffic model, the cache-blocked
//! drivers, and the `obs::counters` byte denominators must tell the same
//! story about how much data one vertical pass moves.
//!
//! Lives in its own integration binary because enabling the process-global
//! kernel counters would race with unrelated tests in a shared process.

use wavelet::rowops::Region;
use wavelet::vertical::{fwd53_vertical, fwd97_vertical, vert_group_cols};
use wavelet::{vertical_traffic, Filter, VerticalVariant};
use xpart::AlignedPlane;

fn make_plane(w: usize, h: usize) -> AlignedPlane<i32> {
    let mut p = AlignedPlane::<i32>::new(w, h).unwrap();
    let mut x = 1u32;
    p.for_each_mut(|_, _, v| {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        *v = ((x >> 8) % 511) as i32 - 255;
    });
    p
}

fn snap(kernel: obs::counters::Kernel) -> obs::counters::KernelSnapshot {
    obs::counters::snapshot()
        .into_iter()
        .find(|s| s.kernel == kernel)
        .unwrap()
}

/// The counter denominator is *payload* bytes (`samples x elem_size`), and
/// the analytic traffic model relates to it through the variant's DMA
/// factor. Both must agree on a known plane — this is what keeps reported
/// GB/s comparable across variants and PR baselines.
#[test]
fn counter_bytes_agree_with_traffic_model() {
    let (w, h) = (100usize, 64usize);
    obs::counters::set_enabled(true);

    // 5/3, merged: one fused pass plus the aux half-band staging.
    obs::counters::reset();
    let mut p = make_plane(w, h);
    let full = Region::full(&p);
    fwd53_vertical(&mut p, full, VerticalVariant::Merged);
    let s = snap(obs::counters::Kernel::Dwt53Vertical);
    assert_eq!(s.invocations, 1);
    assert_eq!(s.samples, (w * h) as u64);
    assert_eq!(s.bytes, (w * h * std::mem::size_of::<i32>()) as u64);

    let t = vertical_traffic(VerticalVariant::Merged, Filter::Rev53, w as u64, h as u64);
    // Model total (elements, both directions) = payload samples x 2 x factor.
    let factor = t.total() as f64 / (2.0 * s.samples as f64);
    assert!((1.0..=3.0).contains(&factor), "factor {factor}");
    let model_bytes = t.total() * std::mem::size_of::<i32>() as u64;
    let counter_derived = (s.bytes as f64 * 2.0 * factor).round() as u64;
    assert_eq!(model_bytes, counter_derived);

    // 9/7 f32: same payload accounting, independent of the filter's extra
    // lifting arithmetic.
    obs::counters::reset();
    let mut q = make_plane(w, h).to_f32();
    let fullq = Region::full(&q);
    fwd97_vertical(&mut q, fullq, VerticalVariant::Merged);
    let s97 = snap(obs::counters::Kernel::Dwt97Vertical);
    assert_eq!(s97.samples, (w * h) as u64);
    assert_eq!(s97.bytes, (w * h * std::mem::size_of::<f32>()) as u64);

    obs::counters::set_enabled(false);
}

/// Counters measure the whole blocked driver once: a plane wider than the
/// column-group width must still record exactly one invocation and the full
/// payload (not per-group fragments).
#[test]
fn blocked_driver_records_single_invocation() {
    let g = vert_group_cols();
    let (w, h) = (2 * g + 3, 12);
    obs::counters::set_enabled(true);
    obs::counters::reset();
    let mut p = make_plane(w, h);
    let full = Region::full(&p);
    fwd53_vertical(&mut p, full, VerticalVariant::Merged);
    let s = snap(obs::counters::Kernel::Dwt53Vertical);
    assert_eq!(s.invocations, 1, "one measure for the whole blocked pass");
    assert_eq!(s.samples, (w * h) as u64);
    assert_eq!(s.bytes, (w * h * 4) as u64);
    obs::counters::set_enabled(false);
}

/// Column-group blocking must not change the analytic traffic: the model is
/// linear in width, so any exact tiling of the region sums to the full-width
/// number for every variant/filter combination.
#[test]
fn traffic_model_invariant_under_column_blocking() {
    let h = 64u64;
    for filter in [Filter::Rev53, Filter::Irr97] {
        for variant in [
            VerticalVariant::Separate,
            VerticalVariant::Interleaved,
            VerticalVariant::Merged,
        ] {
            let whole = vertical_traffic(variant, filter, 1000, h);
            for gw in [1u64, 3, 64, 256, 999] {
                let mut sum = wavelet::Traffic::default();
                let mut x0 = 0;
                while x0 < 1000 {
                    let w = gw.min(1000 - x0);
                    sum = sum.add(&vertical_traffic(variant, filter, w, h));
                    x0 += w;
                }
                assert_eq!(sum, whole, "{variant:?} {filter:?} gw={gw}");
            }
        }
    }
}
