//! Minimal, self-contained stand-in for the parts of `criterion` this
//! workspace uses. The build environment has no registry access, so the
//! workspace vendors the subset of the API its benches rely on:
//! [`Criterion`], [`criterion_group!`]/[`criterion_main!`], benchmark
//! groups with [`Throughput`] annotations, and [`BenchmarkId`].
//!
//! The shim measures real wall-clock time but keeps the statistics simple:
//! each benchmark runs a warm-up, then `sample_size` timed samples, and
//! reports the median, min, and max per-iteration time (plus derived
//! throughput when annotated). There is no outlier analysis, HTML report,
//! or baseline comparison — output goes to stdout only.

use std::time::{Duration, Instant};

/// An opaque black box preventing the optimizer from deleting benchmark
/// work. Same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    // A volatile read of the pointer defeats value propagation without
    // touching the data itself.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id rendered from just the parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }

    /// Id with a function-name prefix and a parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a MeasureConfig,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly, timing batches sized to the configured
    /// measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters.max(1) as f64;

        // Size each sample so the whole measurement fits the window.
        let samples = self.cfg.sample_size.max(2);
        let budget = self.cfg.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).max(1);

        self.results.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.results.push(t0.elapsed() / batch as u32);
        }
    }
}

#[derive(Debug, Clone)]
struct MeasureConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            warm_up_time: Duration::from_secs(1),
            measurement_time: Duration::from_secs(3),
            sample_size: 50,
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_iter: Duration, tp: Throughput) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match tp {
        Throughput::Elements(n) => {
            let rate = n as f64 / secs;
            if rate >= 1e6 {
                format!("{:.2} Melem/s", rate / 1e6)
            } else {
                format!("{:.1} Kelem/s", rate / 1e3)
            }
        }
        Throughput::Bytes(n) => {
            let rate = n as f64 / secs;
            if rate >= 1e6 {
                format!("{:.2} MiB/s", rate / (1024.0 * 1024.0))
            } else {
                format!("{:.1} KiB/s", rate / 1024.0)
            }
        }
    }
}

fn run_one(
    full_name: &str,
    cfg: &MeasureConfig,
    tp: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut results = Vec::new();
    {
        let mut b = Bencher {
            cfg,
            results: &mut results,
        };
        f(&mut b);
    }
    if results.is_empty() {
        println!("{full_name:<40} (no samples)");
        return;
    }
    results.sort();
    let median = results[results.len() / 2];
    let (lo, hi) = (results[0], results[results.len() - 1]);
    let rate = tp
        .map(|t| format!("  {}", format_rate(median, t)))
        .unwrap_or_default();
    println!(
        "{full_name:<40} time: [{} {} {}]{}",
        format_duration(lo),
        format_duration(median),
        format_duration(hi),
        rate
    );
}

/// Benchmark harness entry point (shim over the real `Criterion`).
#[derive(Default)]
pub struct Criterion {
    cfg: MeasureConfig,
}

impl Criterion {
    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Set the total measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Set how many timed samples to collect.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Apply command-line style defaults (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            cfg: self.cfg.clone(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &self.cfg, None, &mut f);
        self
    }

    /// Wrap up (no-op in the shim; the real crate prints summaries here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing throughput/config overrides.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: MeasureConfig,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, &self.cfg, self.throughput, &mut f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.text);
        run_one(&full, &self.cfg, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let cfg = MeasureConfig {
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
            sample_size: 4,
        };
        let mut results = Vec::new();
        let mut b = Bencher {
            cfg: &cfg,
            results: &mut results,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(8))
            .sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &5u32, |b, &v| {
            b.iter(|| v * 2)
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| ()));
    }
}
