//! Minimal, self-contained stand-in for the parts of `proptest` this
//! workspace uses. The build environment has no registry access, so the
//! workspace vendors the subset of the API its tests rely on:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * strategies for primitive ranges, tuples, [`Just`], [`any`],
//!   [`prop_oneof!`], and [`collection::vec`];
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! reports the deterministic seed and case index instead of a minimized
//! input) and no persistence (`proptest-regressions` files are neither read
//! nor written — the generator is fully deterministic per test name, so a
//! failure always reproduces). Each test derives its RNG stream from a hash
//! of the test function's name; set `PROPTEST_SHIM_SEED` to perturb every
//! stream at once when hunting flakes.

use std::fmt;
use std::ops::Range;

pub use rand::RngCore;

/// Deterministic RNG handed to strategies.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Derive a stream from a test name (FNV-1a) plus an optional
    /// environment override.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                h ^= v.rotate_left(17);
            }
        }
        TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the input; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Per-block configuration (`cases` is the only knob this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum consecutive `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values. Object-safe: `generate` is the only
/// required method, so `Box<dyn Strategy<Value = T>>` works (needed by
/// [`prop_oneof!`]).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a dependent strategy from each value and sample it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the already-boxed arms (non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact count or a range,
    /// mirroring upstream's `Into<SizeRange>` conversions.
    pub trait IntoSizeRange {
        /// Lower bound and inclusive upper bound.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: (usize, usize),
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.bounds(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = (self.len.0..=self.len.1).generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Module-style access (`prop::collection::vec`), mirroring upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Equal-weight union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a proptest body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// `prop_assert!` for equality, with value dumps on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            )));
        }
    }};
}

/// Skip the current case when its generated input is unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The test-block macro. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            // Build the strategies once as a single tuple strategy (so arg
            // binders may be arbitrary irrefutable patterns); generation
            // draws fresh values per case.
            let strat = ($($strat,)+);
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < cfg.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&strat, &mut rng);
                // The closure captures `?`/`return` from the test body; it
                // must be called here, not inlined.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => { case += 1; }
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > cfg.max_global_rejects {
                            panic!(
                                "proptest '{}': too many prop_assume! rejections ({})",
                                stringify!($name), rejects
                            );
                        }
                    }
                    ::std::result::Result::Err(e) => {
                        panic!("proptest '{}' failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_oneof_work(
            v in small_even(),
            pick in prop_oneof![Just(1u8), Just(3u8)],
        ) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(pick == 1 || pick == 3);
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0u8..5, 2..9)) {
            prop_assert!((2..9).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(v in any::<u32>()) {
            let _ = v;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        use crate::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
