//! Minimal, self-contained stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no registry access, so the
//! workspace vendors the API surface it needs: [`Rng::gen_range`] over
//! integer and float ranges, [`SeedableRng::seed_from_u64`], and the
//! [`rngs::StdRng`] / [`rngs::SmallRng`] generator types.
//!
//! The generator is xoshiro256**, seeded through SplitMix64 — statistically
//! solid for test-data generation, deterministic for a given seed, and *not*
//! the upstream `StdRng` stream. Nothing in this workspace depends on the
//! exact stream: seeds only parameterize synthetic images and property
//! tests, and every cross-driver assertion compares outputs produced from
//! the *same* generated input.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset of the real trait: `seed_from_u64` only, which
/// is the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type a uniform sample can be drawn from (ranges of primitives).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator used by both [`rngs::StdRng`] and
/// [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s.iter().all(|&v| v == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic general-purpose generator (shim: xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator (shim: same algorithm as [`StdRng`]).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Unbiased uniform integer in `[0, bound)` by rejection sampling.
fn uniform_below(rng: &mut dyn RngCore, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Zone is the largest multiple of `bound` that fits in u128.
    let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
    loop {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 10) as f64) * (1.0 / ((1u64 << 54) - 1) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// `rand::thread_rng()` stand-in: process-seeded, deterministic fallback.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0x005E_ED0F_7E57)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(0..=255);
            assert!(v <= 255);
            let w: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&w));
            let s: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn int_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
