//! `jpeg2000-cell` — umbrella crate for the reproduction of Kang & Bader,
//! *Optimizing JPEG2000 Still Image Encoding on the Cell Broadband Engine*
//! (ICPP 2008).
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`codec`] (`j2k-core`) — the JPEG2000 encoder/decoder with sequential,
//!   host-parallel, and Cell-simulated drivers;
//! * [`machine`] (`cellsim`) — the Cell/B.E. machine model;
//! * [`decomposition`] (`xpart`) — the paper's data decomposition scheme;
//! * [`dwt`] (`wavelet`) — lifting/convolution transforms and the loop
//!   schedule variants of Section 4;
//! * [`entropy`] (`ebcot`) and [`mq`] — EBCOT Tier-1/Tier-2 and the MQ
//!   coder;
//! * [`images`] (`imgio`) — I/O, synthetic workloads, basic metrics;
//! * [`quality`] (`j2k-metrics`) — PSNR/SSIM and the A/B comparator
//!   behind the closed-loop conformance suite;
//! * [`comparators`] (`baselines`) — the Muta et al. and Pentium IV models.
//!
//! # Quickstart
//!
//! ```
//! use jpeg2000_cell::codec::{encode, decode, EncoderParams};
//!
//! let image = jpeg2000_cell::images::synth::natural_rgb(64, 64, 1);
//! let bytes = encode(&image, &EncoderParams::lossless()).unwrap();
//! let back = decode(&bytes).unwrap();
//! assert_eq!(back, image);
//! ```

pub use baselines as comparators;
pub use cellsim as machine;
pub use ebcot as entropy;
pub use imgio as images;
pub use j2k_core as codec;
pub use j2k_metrics as quality;
pub use mqcoder as mq;
pub use wavelet as dwt;
pub use xpart as decomposition;
