//! `j2kserved` — the JPEG2000 encode daemon: a TCP front end over
//! `j2k_serve::EncodeService` speaking the length-prefixed binary
//! protocol of `j2k_serve::wire`.
//!
//! ```text
//! j2kserved [--addr HOST:PORT] [--pool N] [--job-workers N]
//!           [--queue N] [--timeout-ms N] [--max-frame-mb N]
//!           [--max-crash-retries N] [--retry-backoff-ms N]
//!           [--trace] [--trace-dir DIR] [--trace-keep N]
//!           [--metrics-addr HOST:PORT]
//!
//!   --addr HOST:PORT   listen address          (default 127.0.0.1:7201)
//!   --pool N           pool threads draining the job queue (default 2)
//!   --job-workers N    encode_parallel workers per job      (default 1)
//!   --queue N          bounded queue capacity; beyond it jobs are
//!                      rejected as Overloaded                (default 64)
//!   --timeout-ms N     default per-job deadline, 0 = none    (default 0)
//!   --max-frame-mb N   per-frame payload ceiling in MiB      (default 256)
//!   --max-crash-retries N  crash retries before a job is
//!                      quarantined as Poisoned               (default 1)
//!   --retry-backoff-ms N   base crash-retry backoff, doubled
//!                      per crash                             (default 100)
//!   --trace            enable per-job tracing; finished jobs'
//!                      Chrome traces are retained for the wire
//!                      Trace(job_id) request
//!   --trace-dir DIR    also write each trace to
//!                      DIR/trace-job-<id>.json (implies --trace)
//!   --trace-keep N     traces retained, in memory and on disk
//!                      (default 16)
//!   --metrics-addr HOST:PORT  serve Prometheus text exposition on a
//!                      side port (GET anything returns the scrape)
//! ```
//!
//! The daemon exits after a Shutdown request, draining queued and
//! in-flight jobs first.

use j2k_serve::{serve, serve_metrics, EncodeService, ServerConfig, ServiceConfig};
use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("j2kserved: {msg}");
    exit(2);
}

const USAGE: &str = "usage: j2kserved [--addr HOST:PORT] [--pool N] [--job-workers N] \
                     [--queue N] [--timeout-ms N] [--max-frame-mb N] \
                     [--max-crash-retries N] [--retry-backoff-ms N] \
                     [--trace] [--trace-dir DIR] [--trace-keep N] \
                     [--metrics-addr HOST:PORT]";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7201".to_string();
    let mut cfg = ServiceConfig::default();
    let mut max_frame_mb: usize = 256;
    let mut trace_on = false;
    let mut metrics_addr: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &String {
            argv.get(i + 1)
                .unwrap_or_else(|| die(&format!("missing value after {}", argv[i])))
        };
        match argv[i].as_str() {
            "--trace" => {
                trace_on = true;
                i += 1;
                continue;
            }
            "--trace-dir" => {
                trace_on = true;
                cfg.trace_dir = Some(need(i).into());
            }
            "--trace-keep" => {
                cfg.trace_keep = need(i).parse().unwrap_or_else(|_| die("--trace-keep N"))
            }
            "--metrics-addr" => metrics_addr = Some(need(i).clone()),
            "--addr" => addr = need(i).clone(),
            "--pool" => cfg.pool_threads = need(i).parse().unwrap_or_else(|_| die("--pool N")),
            "--job-workers" => {
                cfg.workers_per_job = need(i).parse().unwrap_or_else(|_| die("--job-workers N"))
            }
            "--queue" => cfg.queue_capacity = need(i).parse().unwrap_or_else(|_| die("--queue N")),
            "--timeout-ms" => {
                let ms: u64 = need(i).parse().unwrap_or_else(|_| die("--timeout-ms N"));
                cfg.default_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-frame-mb" => {
                max_frame_mb = need(i).parse().unwrap_or_else(|_| die("--max-frame-mb N"))
            }
            "--max-crash-retries" => {
                cfg.max_crash_retries = need(i)
                    .parse()
                    .unwrap_or_else(|_| die("--max-crash-retries N"))
            }
            "--retry-backoff-ms" => {
                let ms: u64 = need(i)
                    .parse()
                    .unwrap_or_else(|_| die("--retry-backoff-ms N"));
                cfg.retry_backoff = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown flag {other}; {USAGE}")),
        }
        i += 2;
    }

    if trace_on {
        obs::trace::set_enabled(true);
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
    println!(
        "j2kserved listening on {} (pool {}, {} workers/job, queue {}, default timeout {:?}{})",
        listener.local_addr().map_or(addr, |a| a.to_string()),
        cfg.pool_threads,
        cfg.workers_per_job,
        cfg.queue_capacity,
        cfg.default_timeout,
        if trace_on { ", tracing" } else { "" },
    );
    let service = Arc::new(EncodeService::start(cfg));
    if let Some(maddr) = metrics_addr {
        let mlistener =
            TcpListener::bind(&maddr).unwrap_or_else(|e| die(&format!("bind {maddr}: {e}")));
        println!(
            "j2kserved metrics on http://{}/metrics",
            mlistener.local_addr().map_or(maddr, |a| a.to_string())
        );
        let msvc = Arc::clone(&service);
        std::thread::spawn(move || serve_metrics(mlistener, msvc));
    }
    let server_cfg = ServerConfig {
        max_frame: max_frame_mb << 20,
    };
    serve(listener, service, server_cfg).unwrap_or_else(|e| die(&format!("serve: {e}")));
}
