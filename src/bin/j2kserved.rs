//! `j2kserved` — the JPEG2000 encode daemon: a TCP front end over
//! `j2k_serve::EncodeService` speaking the length-prefixed binary
//! protocol of `j2k_serve::wire`.
//!
//! ```text
//! j2kserved [--addr HOST:PORT] [--pool N] [--job-workers N]
//!           [--queue N] [--timeout-ms N] [--max-frame-mb N]
//!           [--max-crash-retries N] [--retry-backoff-ms N]
//!           [--trace] [--trace-dir DIR] [--trace-keep N]
//!           [--metrics-addr HOST:PORT] [--io-timeout-ms N]
//!           [--max-conns N] [--pixel-budget-mp N] [--high-priority N]
//!           [--pressure-elevated PCT] [--pressure-critical PCT]
//!
//!   --addr HOST:PORT   listen address          (default 127.0.0.1:7201)
//!   --pool N           pool threads draining the job queue (default 2)
//!   --job-workers N    encode_parallel workers per job      (default 1)
//!   --queue N          bounded queue capacity; beyond it jobs are
//!                      rejected as Overloaded                (default 64)
//!   --timeout-ms N     default per-job deadline, 0 = none    (default 0)
//!   --max-frame-mb N   per-frame payload ceiling in MiB      (default 256)
//!   --max-crash-retries N  crash retries before a job is
//!                      quarantined as Poisoned               (default 1)
//!   --retry-backoff-ms N   base crash-retry backoff, doubled
//!                      per crash                             (default 100)
//!   --trace            enable per-job tracing; finished jobs'
//!                      Chrome traces are retained for the wire
//!                      Trace(job_id) request
//!   --trace-dir DIR    also write each trace to
//!                      DIR/trace-job-<id>.json (implies --trace)
//!   --trace-keep N     traces retained, in memory and on disk
//!                      (default 16)
//!   --metrics-addr HOST:PORT  serve Prometheus text exposition on a
//!                      side port (GET anything returns the scrape)
//!   --io-timeout-ms N  per-connection read/write deadline on the wire
//!                      and metrics ports, 0 = none       (default 30000)
//!   --max-conns N      concurrent wire connections, 0 = unlimited
//!                      (default 256)
//!   --pixel-budget-mp N  in-flight pixel budget in megapixels,
//!                      0 = unlimited                         (default 0)
//!   --high-priority N  jobs with priority >= N are admitted even at
//!                      Critical pressure                   (default 128)
//!   --pressure-elevated PCT  queue-depth percent at which pressure is
//!                      Elevated                             (default 75)
//!   --pressure-critical PCT  queue-depth percent at which pressure is
//!                      Critical                             (default 95)
//!   --slo-latency-ms N  latency SLO threshold: jobs should finish end
//!                      to end within N milliseconds         (default 500)
//!   --slo-latency-objective PCT  fraction of jobs (percent) that must
//!                      meet the latency threshold            (default 99)
//!   --slo-error-objective PCT  fraction of finished jobs (percent,
//!                      fractions allowed, e.g. 99.9) that must
//!                      complete rather than fail or time out
//!                                                          (default 99.9)
//!   --no-slo           disable burn-rate SLO monitoring
//! ```
//!
//! The daemon always enables the per-kernel perf counters
//! (`obs::counters`): GB/s and symbols/s per kernel appear in the
//! Prometheus exposition and the wire Metrics JSON. The armed cost is a
//! few relaxed atomic adds per kernel invocation — negligible next to
//! the kernels themselves.
//!
//! The daemon exits after a Shutdown request, draining queued and
//! in-flight jobs first. Under pressure it sheds low-priority work with
//! `Overloaded { retry_after_ms }`, degrades `allow_degraded` jobs to
//! the HT coder, and at Critical stops taking new connections
//! (DESIGN.md §16).

use j2k_serve::{serve, serve_metrics_with, EncodeService, ServerConfig, ServiceConfig};
use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("j2kserved: {msg}");
    exit(2);
}

const USAGE: &str = "usage: j2kserved [--addr HOST:PORT] [--pool N] [--job-workers N] \
                     [--queue N] [--timeout-ms N] [--max-frame-mb N] \
                     [--max-crash-retries N] [--retry-backoff-ms N] \
                     [--trace] [--trace-dir DIR] [--trace-keep N] \
                     [--metrics-addr HOST:PORT] [--io-timeout-ms N] \
                     [--max-conns N] [--pixel-budget-mp N] [--high-priority N] \
                     [--pressure-elevated PCT] [--pressure-critical PCT] \
                     [--slo-latency-ms N] [--slo-latency-objective PCT] \
                     [--slo-error-objective PCT] [--no-slo]";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7201".to_string();
    let mut cfg = ServiceConfig::default();
    let mut max_frame_mb: usize = 256;
    let mut trace_on = false;
    let mut metrics_addr: Option<String> = None;
    let mut io_timeout_ms: u64 = 30_000;
    let mut max_conns: usize = 256;
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &String {
            argv.get(i + 1)
                .unwrap_or_else(|| die(&format!("missing value after {}", argv[i])))
        };
        match argv[i].as_str() {
            "--trace" => {
                trace_on = true;
                i += 1;
                continue;
            }
            "--trace-dir" => {
                trace_on = true;
                cfg.trace_dir = Some(need(i).into());
            }
            "--trace-keep" => {
                cfg.trace_keep = need(i).parse().unwrap_or_else(|_| die("--trace-keep N"))
            }
            "--metrics-addr" => metrics_addr = Some(need(i).clone()),
            "--addr" => addr = need(i).clone(),
            "--pool" => cfg.pool_threads = need(i).parse().unwrap_or_else(|_| die("--pool N")),
            "--job-workers" => {
                cfg.workers_per_job = need(i).parse().unwrap_or_else(|_| die("--job-workers N"))
            }
            "--queue" => cfg.queue_capacity = need(i).parse().unwrap_or_else(|_| die("--queue N")),
            "--timeout-ms" => {
                let ms: u64 = need(i).parse().unwrap_or_else(|_| die("--timeout-ms N"));
                cfg.default_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-frame-mb" => {
                max_frame_mb = need(i).parse().unwrap_or_else(|_| die("--max-frame-mb N"))
            }
            "--max-crash-retries" => {
                cfg.max_crash_retries = need(i)
                    .parse()
                    .unwrap_or_else(|_| die("--max-crash-retries N"))
            }
            "--retry-backoff-ms" => {
                let ms: u64 = need(i)
                    .parse()
                    .unwrap_or_else(|_| die("--retry-backoff-ms N"));
                cfg.retry_backoff = Duration::from_millis(ms);
            }
            "--io-timeout-ms" => {
                io_timeout_ms = need(i).parse().unwrap_or_else(|_| die("--io-timeout-ms N"))
            }
            "--max-conns" => max_conns = need(i).parse().unwrap_or_else(|_| die("--max-conns N")),
            "--pixel-budget-mp" => {
                let mp: u64 = need(i)
                    .parse()
                    .unwrap_or_else(|_| die("--pixel-budget-mp N"));
                cfg.pressure.pixel_budget = if mp == 0 { u64::MAX } else { mp * 1_000_000 };
            }
            "--high-priority" => {
                cfg.high_priority_min = need(i).parse().unwrap_or_else(|_| die("--high-priority N"))
            }
            "--pressure-elevated" => {
                let pct: u64 = need(i)
                    .parse()
                    .ok()
                    .filter(|p| (1..=100).contains(p))
                    .unwrap_or_else(|| die("--pressure-elevated PCT (1..=100)"));
                cfg.pressure.elevated_depth = pct as f64 / 100.0;
            }
            "--pressure-critical" => {
                let pct: u64 = need(i)
                    .parse()
                    .ok()
                    .filter(|p| (1..=100).contains(p))
                    .unwrap_or_else(|| die("--pressure-critical PCT (1..=100)"));
                cfg.pressure.critical_depth = pct as f64 / 100.0;
            }
            "--no-slo" => {
                cfg.slo = None;
                i += 1;
                continue;
            }
            "--slo-latency-ms" => {
                let ms: u64 = need(i)
                    .parse()
                    .unwrap_or_else(|_| die("--slo-latency-ms N"));
                cfg.slo
                    .get_or_insert_with(Default::default)
                    .latency_threshold_us = ms * 1000;
            }
            "--slo-latency-objective" => {
                let pct: f64 = need(i)
                    .parse()
                    .ok()
                    .filter(|p| (0.0..100.0).contains(p) && *p > 0.0)
                    .unwrap_or_else(|| die("--slo-latency-objective PCT in (0,100)"));
                cfg.slo
                    .get_or_insert_with(Default::default)
                    .latency_objective = pct / 100.0;
            }
            "--slo-error-objective" => {
                let pct: f64 = need(i)
                    .parse()
                    .ok()
                    .filter(|p| (0.0..100.0).contains(p) && *p > 0.0)
                    .unwrap_or_else(|| die("--slo-error-objective PCT in (0,100)"));
                cfg.slo.get_or_insert_with(Default::default).error_objective = pct / 100.0;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown flag {other}; {USAGE}")),
        }
        i += 2;
    }

    if trace_on {
        obs::trace::set_enabled(true);
    }
    // Per-kernel perf counters are always on in the daemon: the armed
    // cost is a handful of relaxed atomic adds per kernel invocation.
    obs::counters::set_enabled(true);
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
    println!(
        "j2kserved listening on {} (pool {}, {} workers/job, queue {}, default timeout {:?}{})",
        listener.local_addr().map_or(addr, |a| a.to_string()),
        cfg.pool_threads,
        cfg.workers_per_job,
        cfg.queue_capacity,
        cfg.default_timeout,
        if trace_on { ", tracing" } else { "" },
    );
    let io_timeout = (io_timeout_ms > 0).then(|| Duration::from_millis(io_timeout_ms));
    let service = Arc::new(EncodeService::start(cfg));
    if let Some(maddr) = metrics_addr {
        let mlistener =
            TcpListener::bind(&maddr).unwrap_or_else(|e| die(&format!("bind {maddr}: {e}")));
        println!(
            "j2kserved metrics on http://{}/metrics",
            mlistener.local_addr().map_or(maddr, |a| a.to_string())
        );
        let msvc = Arc::clone(&service);
        std::thread::spawn(move || serve_metrics_with(mlistener, msvc, io_timeout));
    }
    let server_cfg = ServerConfig {
        max_frame: max_frame_mb << 20,
        io_timeout,
        max_connections: max_conns,
    };
    serve(listener, service, server_cfg).unwrap_or_else(|e| die(&format!("serve: {e}")));
}
