//! `j2kcell` — command-line JPEG2000 encoder/decoder and Cell/B.E.
//! what-if simulator.
//!
//! ```text
//! j2kcell encode  input.{bmp,pgm,ppm} output.{j2c,jp2} [--lossy RATE] [--levels N]
//!                 [--cb N] [--variant separate|interleaved|merged]
//!                 [--fixed] [--bypass] [--layers N] [--workers N]
//! j2kcell decode  input.j2c output.{bmp,pgm,ppm} [--resolution N] [--max-layers N]
//! j2kcell compare a.{bmp,pgm,ppm} b.{bmp,pgm,ppm} [--min-psnr DB] [--min-ssim S] [--json]
//! j2kcell simulate input.{bmp,pgm,ppm} [--lossy RATE] [--spes N] [--ppes N]
//! j2kcell info    input.j2c
//! j2kcell synth   output.{bmp,pgm,ppm} [--size N] [--seed N] [--gray]
//! ```
//!
//! `compare` runs the `j2k-metrics` battery (PSNR, SSIM, max error,
//! bit-exactness) between a reference image A and a candidate B — the
//! closed-loop half of an encode/decode round trip. With `--min-psnr` /
//! `--min-ssim` it exits nonzero when the candidate falls below the
//! floor, so shell pipelines can gate on quality.
//!
//! `--workers N` (alias `--threads`) dispatches the encode to
//! `encode_parallel` with N host threads — the paper's chunked sample
//! stages plus the dynamic Tier-1 queue — producing a codestream
//! byte-identical to the sequential encoder.

use jpeg2000_cell::codec::cell::{simulate_traced, SimOptions};
use jpeg2000_cell::codec::codestream;
use jpeg2000_cell::codec::{
    decode, decode_layers, decode_resolution, encode_with_profile, Coder, EncoderParams, Mode,
};
use jpeg2000_cell::images::{bmp, pnm, Image};
use jpeg2000_cell::machine::MachineConfig;
use std::path::Path;
use std::process::exit;

fn die(msg: &str) -> ! {
    eprintln!("j2kcell: {msg}");
    exit(2);
}

const USAGE: &str = "\
j2kcell — JPEG2000 encoder/decoder and Cell/B.E. what-if simulator

usage:
  j2kcell encode  INPUT.{bmp,pgm,ppm} OUTPUT.{j2c,jp2} [options]
  j2kcell decode  INPUT.{j2c,jp2} OUTPUT.{bmp,pgm,ppm} [--resolution N] [--max-layers N]
  j2kcell compare A.{bmp,pgm,ppm} B.{bmp,pgm,ppm} [--min-psnr DB] [--min-ssim S] [--json]
                  measure candidate B against reference A (PSNR, SSIM,
                  max error, bit-exactness); exits 1 when a --min-* floor
                  is violated, 2 on incomparable geometry
  j2kcell simulate INPUT.{bmp,pgm,ppm} [--lossy RATE] [--spes N] [--ppes N]
                  [--cell-trace-out FILE]
  j2kcell info    INPUT.{j2c,jp2}
  j2kcell synth   OUTPUT.{bmp,pgm,ppm} [--size N] [--seed N] [--gray]
                  write a deterministic natural-statistics test image
                  (N x N, default 256; --gray for single component)

encode options:
  --lossy RATE       irreversible 9/7 path at RATE output bits per input
                     bit (e.g. 0.1 = 10:1); default lossless 5/3
  --levels N         DWT decomposition levels (default 5)
  --cb N             code block size, power of two <= 64 (default 64)
  --layers N         quality layers (default 1)
  --variant V        vertical DWT schedule: separate|interleaved|merged
  --fixed            Q13 fixed-point 9/7 arithmetic (default f32)
  --bypass           selective MQ bypass (lazy mode; MQ coder only)
  --coder C          Tier-1 block coder: mq (default, EBCOT MQ bit-plane
                     coder) or ht (high-throughput quad coder, Part-15
                     style: MEL + CxtVLC + MagSgn cleanup, raw
                     refinement passes)
  --workers N        encode with N host threads via encode_parallel —
                     chunked sample stages + dynamic Tier-1 work queue;
                     output stays byte-identical to the sequential
                     encoder (alias: --threads; default 1 = sequential)
  --failpoints SPEC  arm faultsim failpoints before encoding, e.g.
                     `dwt.level=error@2` or `tier1.block=panic@3` —
                     requires a build with `--features failpoints`; the
                     codec failpoints live in the parallel driver, so
                     combine with --workers >= 2 (chaos drills; see
                     DESIGN.md §11)
  --trace-out FILE   record the encode as Chrome trace-event JSON and
                     write it to FILE (load in Perfetto / about:tracing);
                     routes the encode through the parallel driver so
                     per-stage and per-chunk spans exist even at
                     --workers 1 — output bytes are unchanged

simulate options:
  --cell-trace-out FILE
                     export the simulated schedule as Chrome trace-event
                     JSON on the *virtual* clock: one span per pipeline
                     stage plus per-PE compute and DMA tracks (GET /
                     compute / PUT per task), so double-buffered overlap
                     and the Tier-1 queue's load balance are visible in
                     Perfetto";

fn read_image(path: &str) -> Image {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let r = match ext.to_ascii_lowercase().as_str() {
        "bmp" => bmp::read(path),
        "pgm" | "ppm" | "pnm" => pnm::read(path),
        other => die(&format!(
            "unsupported input extension .{other} (bmp/pgm/ppm)"
        )),
    };
    r.unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")))
}

fn write_image(path: &str, im: &Image) {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let r = match ext.to_ascii_lowercase().as_str() {
        "bmp" => bmp::write(path, im),
        "pgm" | "ppm" | "pnm" => pnm::write(path, im),
        other => die(&format!(
            "unsupported output extension .{other} (bmp/pgm/ppm)"
        )),
    };
    r.unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
}

struct Opt {
    positional: Vec<String>,
    lossy: Option<f64>,
    levels: usize,
    cb: usize,
    layers: usize,
    fixed: bool,
    variant: wavelet::VerticalVariant,
    workers: usize,
    spes: usize,
    ppes: usize,
    resolution: usize,
    max_layers: usize,
    bypass: bool,
    coder: Coder,
    failpoints: Option<String>,
    trace_out: Option<String>,
    cell_trace_out: Option<String>,
    size: usize,
    seed: u64,
    gray: bool,
    min_psnr: Option<f64>,
    min_ssim: Option<f64>,
    json: bool,
}

fn parse(args: &[String]) -> Opt {
    let mut o = Opt {
        positional: Vec::new(),
        lossy: None,
        levels: 5,
        cb: 64,
        layers: 1,
        fixed: false,
        variant: wavelet::VerticalVariant::Merged,
        workers: 1,
        spes: 8,
        ppes: 1,
        resolution: 0,
        max_layers: usize::MAX,
        bypass: false,
        coder: Coder::Mq,
        failpoints: None,
        trace_out: None,
        cell_trace_out: None,
        size: 256,
        seed: 7,
        gray: false,
        min_psnr: None,
        min_ssim: None,
        json: false,
    };
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &String {
            args.get(i + 1)
                .unwrap_or_else(|| die(&format!("missing value after {}", args[i])))
        };
        match args[i].as_str() {
            "--lossy" => {
                o.lossy = Some(need(i).parse().unwrap_or_else(|_| die("--lossy RATE")));
                i += 2;
            }
            "--levels" => {
                o.levels = need(i).parse().unwrap_or_else(|_| die("--levels N"));
                i += 2;
            }
            "--cb" => {
                o.cb = need(i).parse().unwrap_or_else(|_| die("--cb N"));
                i += 2;
            }
            "--layers" => {
                o.layers = need(i).parse().unwrap_or_else(|_| die("--layers N"));
                i += 2;
            }
            "--workers" | "--threads" => {
                o.workers = need(i)
                    .parse()
                    .unwrap_or_else(|_| die(&format!("{} N", args[i])));
                i += 2;
            }
            "--spes" => {
                o.spes = need(i).parse().unwrap_or_else(|_| die("--spes N"));
                i += 2;
            }
            "--ppes" => {
                o.ppes = need(i).parse().unwrap_or_else(|_| die("--ppes N"));
                i += 2;
            }
            "--resolution" => {
                o.resolution = need(i).parse().unwrap_or_else(|_| die("--resolution N"));
                i += 2;
            }
            "--max-layers" => {
                o.max_layers = need(i).parse().unwrap_or_else(|_| die("--max-layers N"));
                i += 2;
            }
            "--failpoints" => {
                o.failpoints = Some(need(i).clone());
                i += 2;
            }
            "--trace-out" => {
                o.trace_out = Some(need(i).clone());
                i += 2;
            }
            "--cell-trace-out" => {
                o.cell_trace_out = Some(need(i).clone());
                i += 2;
            }
            "--size" => {
                o.size = need(i).parse().unwrap_or_else(|_| die("--size N"));
                i += 2;
            }
            "--seed" => {
                o.seed = need(i).parse().unwrap_or_else(|_| die("--seed N"));
                i += 2;
            }
            "--gray" => {
                o.gray = true;
                i += 1;
            }
            "--min-psnr" => {
                o.min_psnr = Some(need(i).parse().unwrap_or_else(|_| die("--min-psnr DB")));
                i += 2;
            }
            "--min-ssim" => {
                o.min_ssim = Some(need(i).parse().unwrap_or_else(|_| die("--min-ssim S")));
                i += 2;
            }
            "--json" => {
                o.json = true;
                i += 1;
            }
            "--fixed" => {
                o.fixed = true;
                i += 1;
            }
            "--bypass" => {
                o.bypass = true;
                i += 1;
            }
            "--coder" => {
                o.coder = Coder::parse(need(i)).unwrap_or_else(|| die("--coder mq|ht"));
                i += 2;
            }
            "--variant" => {
                o.variant = match need(i).as_str() {
                    "separate" => wavelet::VerticalVariant::Separate,
                    "interleaved" => wavelet::VerticalVariant::Interleaved,
                    "merged" => wavelet::VerticalVariant::Merged,
                    v => die(&format!("unknown variant {v}")),
                };
                i += 2;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag}")),
            _ => {
                o.positional.push(args[i].clone());
                i += 1;
            }
        }
    }
    o
}

fn params_of(o: &Opt) -> EncoderParams {
    EncoderParams {
        mode: match o.lossy {
            Some(rate) => Mode::Lossy { rate },
            None => Mode::Lossless,
        },
        levels: o.levels,
        cb_size: o.cb,
        layers: o.layers,
        bypass: o.bypass,
        coder: o.coder,
        variant: o.variant,
        arithmetic: if o.fixed {
            jpeg2000_cell::codec::Arithmetic::FixedQ13
        } else {
            jpeg2000_cell::codec::Arithmetic::Float32
        },
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        die("usage: j2kcell <encode|decode|compare|simulate|info|synth> ... (--help for details)");
    };
    if cmd == "--help" || cmd == "-h" {
        println!("{USAGE}");
        return;
    }
    let o = parse(rest);
    if let Some(spec) = &o.failpoints {
        if !faultsim::ENABLED {
            die(
                "--failpoints requires a build with `--features failpoints` \
                 (this binary compiled the fault-injection layer out)",
            );
        }
        let schedule =
            faultsim::parse_schedule(spec).unwrap_or_else(|e| die(&format!("--failpoints: {e}")));
        let n = faultsim::arm_schedule(&schedule);
        eprintln!("j2kcell: armed {n} failpoint rule(s) from --failpoints");
    }
    match cmd.as_str() {
        "encode" => {
            let [input, output] = o.positional.as_slice() else {
                die("encode needs INPUT and OUTPUT paths");
            };
            let im = read_image(input);
            let params = params_of(&o);
            if o.trace_out.is_some() {
                obs::trace::set_enabled(true);
                obs::trace::set_current(obs::trace::next_trace_id());
            }
            let t0 = std::time::Instant::now();
            // --trace-out routes through the parallel driver even at 1
            // worker: the stage/chunk spans live there, and the output
            // is byte-identical either way.
            let bytes = if o.workers > 1 || o.trace_out.is_some() {
                jpeg2000_cell::codec::parallel::encode_parallel(&im, &params, o.workers.max(1))
                    .unwrap_or_else(|e| die(&e.to_string()))
            } else {
                jpeg2000_cell::codec::encode(&im, &params).unwrap_or_else(|e| die(&e.to_string()))
            };
            if let Some(trace_path) = &o.trace_out {
                obs::trace::flush_thread();
                let events = obs::trace::drain_all();
                let json = obs::chrome::render(&events);
                std::fs::write(trace_path, &json)
                    .unwrap_or_else(|e| die(&format!("cannot write {trace_path}: {e}")));
                eprintln!(
                    "j2kcell: wrote {} trace events to {trace_path}{}",
                    events.len(),
                    if obs::trace::dropped() > 0 {
                        " (sink overflow: some events dropped)"
                    } else {
                        ""
                    }
                );
            }
            let bytes = if output.ends_with(".jp2") {
                jpeg2000_cell::codec::jp2::wrap(&bytes).unwrap_or_else(|e| die(&e.to_string()))
            } else {
                bytes
            };
            std::fs::write(output, &bytes).unwrap_or_else(|e| die(&e.to_string()));
            println!(
                "{} -> {}: {} -> {} bytes ({:.2}:1) in {:.1} ms",
                input,
                output,
                im.raw_bytes(),
                bytes.len(),
                im.raw_bytes() as f64 / bytes.len() as f64,
                t0.elapsed().as_secs_f64() * 1e3
            );
        }
        "decode" => {
            let [input, output] = o.positional.as_slice() else {
                die("decode needs INPUT and OUTPUT paths");
            };
            let bytes = std::fs::read(input).unwrap_or_else(|e| die(&e.to_string()));
            let cs: &[u8] = if jpeg2000_cell::codec::jp2::is_jp2(&bytes) {
                jpeg2000_cell::codec::jp2::unwrap(&bytes).unwrap_or_else(|e| die(&e.to_string()))
            } else {
                &bytes
            };
            let im = if o.resolution > 0 {
                decode_resolution(cs, o.resolution)
            } else if o.max_layers != usize::MAX {
                decode_layers(cs, o.max_layers)
            } else {
                decode(cs)
            }
            .unwrap_or_else(|e| die(&e.to_string()));
            write_image(output, &im);
            println!(
                "{} -> {}: {}x{} x{} components",
                input,
                output,
                im.width,
                im.height,
                im.comps()
            );
        }
        "compare" => {
            let [a_path, b_path] = o.positional.as_slice() else {
                die("compare needs reference A and candidate B image paths");
            };
            let a = read_image(a_path);
            let b = read_image(b_path);
            let c = jpeg2000_cell::quality::compare(&a, &b)
                .unwrap_or_else(|e| die(&format!("{a_path} vs {b_path}: {e}")));
            if o.json {
                println!("{}", c.to_json());
            } else {
                print!("{c}");
            }
            let mut violated = false;
            if let Some(floor) = o.min_psnr {
                if c.psnr < floor {
                    eprintln!("j2kcell: PSNR {:.2} dB below floor {floor:.2} dB", c.psnr);
                    violated = true;
                }
            }
            if let Some(floor) = o.min_ssim {
                if c.ssim < floor {
                    eprintln!("j2kcell: SSIM {:.4} below floor {floor:.4}", c.ssim);
                    violated = true;
                }
            }
            if violated {
                exit(1);
            }
        }
        "simulate" => {
            let [input] = o.positional.as_slice() else {
                die("simulate needs an INPUT image path");
            };
            let im = read_image(input);
            let (_, prof) =
                encode_with_profile(&im, &params_of(&o)).unwrap_or_else(|e| die(&e.to_string()));
            let base = if o.spes > 8 {
                MachineConfig::qs20_blade()
            } else {
                MachineConfig::qs20_single()
            };
            let cfg = base.with_spes(o.spes).with_ppes(o.ppes);
            let (tl, tr) = simulate_traced(
                &prof,
                &cfg,
                &SimOptions {
                    ppe_tier1: o.ppes > 1,
                    ..Default::default()
                },
            );
            if let Some(trace_path) = &o.cell_trace_out {
                let json = tr.to_chrome_json();
                std::fs::write(trace_path, &json)
                    .unwrap_or_else(|e| die(&format!("cannot write {trace_path}: {e}")));
                eprintln!(
                    "j2kcell: wrote simulated schedule ({} stages, {} cycles) to {trace_path}",
                    tr.stages().len(),
                    tr.total_cycles()
                );
            }
            println!(
                "simulated encode on {} SPE + {} PPE Cell/B.E. @ {:.1} GHz:",
                cfg.num_spes,
                cfg.num_ppes,
                cfg.clock_hz / 1e9
            );
            print!("{}", tl.render());
        }
        "info" => {
            let [input] = o.positional.as_slice() else {
                die("info needs an INPUT .j2c path");
            };
            let bytes = std::fs::read(input).unwrap_or_else(|e| die(&e.to_string()));
            let cs: &[u8] = if jpeg2000_cell::codec::jp2::is_jp2(&bytes) {
                println!("JP2 container ({} bytes)", bytes.len());
                jpeg2000_cell::codec::jp2::unwrap(&bytes).unwrap_or_else(|e| die(&e.to_string()))
            } else {
                &bytes
            };
            let parsed = codestream::parse(cs).unwrap_or_else(|e| die(&e.to_string()));
            let h = &parsed.header;
            println!("{}x{} x{} @ {} bit", h.width, h.height, h.comps, h.depth);
            println!(
                "{} levels, {} layers, {}x{} code blocks, {}, {} tier-1, MCT {}",
                h.levels,
                h.layers,
                h.cb_size,
                h.cb_size,
                if h.lossless {
                    "reversible 5/3"
                } else {
                    "irreversible 9/7"
                },
                h.coder.name(),
                h.mct
            );
            println!(
                "{} coded blocks, {} codestream bytes",
                parsed.blocks.len(),
                cs.len()
            );
        }
        "synth" => {
            let [output] = o.positional.as_slice() else {
                die("synth needs an OUTPUT image path");
            };
            if o.size == 0 {
                die("--size must be positive");
            }
            let im = if o.gray {
                jpeg2000_cell::images::synth::natural(o.size, o.size, o.seed)
            } else {
                jpeg2000_cell::images::synth::natural_rgb(o.size, o.size, o.seed)
            };
            write_image(output, &im);
            println!(
                "{}: {}x{} x{} synthetic image (seed {})",
                output,
                im.width,
                im.height,
                im.comps(),
                o.seed
            );
        }
        other => die(&format!("unknown command {other}")),
    }
}
